"""Span-based tracing on the simulation clock.

A :class:`Span` is a named interval ``[start, end]`` of *simulated* time
with arbitrary JSON-serializable attributes.  The engine uses spans to
follow a publication hop by hop (``hop.AP`` → ``hop.M`` → ``hop.EP`` →
``hop.SINK``, correlated by the ``pub_id`` attribute), a migration
through its protocol phases (``migration.pre`` … ``migration.post``,
linked to a ``migration`` root span via ``parent_id``), and an enforcer
decision via instant spans carrying the decision's full inputs.

Because timestamps come from the discrete-event clock and span ids are
assigned sequentially, two identical simulation runs produce
byte-identical JSONL traces — tracing is a pure observer and never
schedules simulation events.

Disabled tracing is the :data:`NULL_TRACER` singleton whose methods are
no-ops; instrumented call sites guard on ``tracer.enabled`` so the cost
of a disabled tracer is one attribute test.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "read_jsonl"]


class Span:
    """One traced interval; ``end`` is ``None`` while the span is open."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(
        self,
        span_id: int,
        name: str,
        start: float,
        end: Optional[float] = None,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = end
        self.attrs = attrs or {}

    @property
    def duration_s(self) -> float:
        """Span length in simulated seconds (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_record(self) -> Dict[str, Any]:
        """Plain-data form of the span (one JSONL line)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration_s": self.duration_s if self.end is not None else None,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<span #{self.span_id} {self.name} [{self.start}, {self.end}]>"


class _SpanScope:
    """Context manager closing a span on exit (``with tracer.span(...)``)."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.finish_span(self.span)


class Tracer:
    """Collects spans against an externally supplied clock.

    ``clock`` is any zero-argument callable returning the current time;
    :class:`~repro.telemetry.Telemetry` binds it to the simulation
    environment's ``now``.  Spans are appended in *start* order, which
    together with the deterministic clock makes traces reproducible
    run-to-run.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or (lambda: 0.0)
        self.spans: List[Span] = []
        self._next_id = 1
        # Windowed disk streaming (see stream_to); inactive by default.
        self._stream_handle = None
        self._stream_path: Optional[str] = None
        self._stream_tmp: Optional[str] = None
        self._stream_window = 0
        #: name → [count, total_s, max_s] of spans already streamed out.
        self._flushed_stats: Dict[str, List[float]] = {}
        #: Spans written to the stream file and dropped from memory.
        self.flushed_spans = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Replace the clock (used when the environment arrives late)."""
        self._clock = clock

    @property
    def now(self) -> float:
        """Current clock reading."""
        return self._clock()

    # -- recording --------------------------------------------------------------

    def start_span(
        self, name: str, parent: Optional[Span] = None, **attrs: Any
    ) -> Span:
        """Open a span at the current clock; close with :meth:`finish_span`.

        Use the explicit start/finish pair when the interval crosses
        simulation yields (migration phases); use :meth:`span` when it
        closes within one synchronous block.
        """
        span = Span(
            self._next_id,
            name,
            self._clock(),
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def finish_span(self, span: Span, **attrs: Any) -> Span:
        """Close ``span`` at the current clock, merging extra attributes."""
        span.end = self._clock()
        if attrs:
            span.attrs.update(attrs)
        if self._stream_handle is not None:
            self._maybe_stream()
        return span

    def span(self, name: str, parent: Optional[Span] = None, **attrs: Any) -> _SpanScope:
        """Context manager form of :meth:`start_span`/:meth:`finish_span`."""
        return _SpanScope(self, self.start_span(name, parent=parent, **attrs))

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-measured interval (e.g. a hop latency whose
        start is the upstream emission timestamp)."""
        span = Span(
            self._next_id,
            name,
            start,
            end=end,
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        if self._stream_handle is not None:
            self._maybe_stream()
        return span

    def event(self, name: str, **attrs: Any) -> Span:
        """Record an instant (zero-duration) span — a decision, a marker."""
        now = self._clock()
        return self.add_span(name, now, now, **attrs)

    # -- windowed disk streaming -------------------------------------------------

    def stream_to(self, path: str, window_spans: int = 4096) -> str:
        """Stream spans to ``path`` in fixed-size windows, keeping memory flat.

        Whenever ``window_spans`` spans are resident, the longest *closed*
        prefix (spans never leave the file out of start order, so an open
        span holds back everything behind it) is appended to the stream
        file and dropped from memory.  The final :meth:`write_jsonl` call
        on the same ``path`` writes the remainder and atomically installs
        the file — whose bytes are identical to a non-streamed
        :meth:`write_jsonl` of the same run, because spans are written in
        the same order with the same sequential ids and the clock is the
        deterministic simulation clock.

        While streaming, :meth:`breakdown` still covers every closed span
        (flushed spans fold into incremental statistics), but
        :meth:`find` and :attr:`spans` only see the resident window.
        """
        if window_spans < 1:
            raise ValueError(f"window_spans must be >= 1, got {window_spans}")
        if self._stream_handle is not None:
            raise RuntimeError(f"already streaming to {self._stream_path}")
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".trace-", suffix=".stream")
        self._stream_handle = os.fdopen(fd, "w")
        self._stream_path = os.path.abspath(path)
        self._stream_tmp = tmp
        self._stream_window = window_spans
        self._maybe_stream()
        return path

    @property
    def streaming(self) -> bool:
        return self._stream_handle is not None

    def _maybe_stream(self) -> None:
        """Flush the longest closed span prefix once the window fills."""
        spans = self.spans
        if len(spans) < self._stream_window:
            return
        prefix = 0
        for span in spans:
            if span.end is None:
                break
            prefix += 1
        if prefix == 0:
            return
        self._write_spans(spans[:prefix], account=True)
        del spans[:prefix]
        self.flushed_spans += prefix

    def _write_spans(self, spans, account: bool) -> None:
        handle = self._stream_handle
        stats = self._flushed_stats
        for span in spans:
            handle.write(json.dumps(span.to_record(), sort_keys=True))
            handle.write("\n")
            if account and span.end is not None:
                duration = span.duration_s
                entry = stats.get(span.name)
                if entry is None:
                    stats[span.name] = [1, duration, duration]
                else:
                    entry[0] += 1
                    entry[1] += duration
                    if duration > entry[2]:
                        entry[2] = duration

    # -- read-out ---------------------------------------------------------------

    def find(self, name: str) -> List[Span]:
        """All resident spans named ``name``, in start order.

        With streaming enabled, spans already flushed to disk are not
        searched — load them with :func:`read_jsonl` instead.
        """
        return [span for span in self.spans if span.name == name]

    def breakdown(self) -> List[Tuple[str, int, float, float, float]]:
        """Per-span-name latency summary, sorted by total time descending.

        Returns ``(name, count, total_s, mean_s, max_s)`` tuples over all
        *closed* spans — the ``repro trace`` latency table.  Spans
        streamed to disk are included through incremental statistics.
        """
        stats: Dict[str, List[float]] = {
            name: list(entry) for name, entry in self._flushed_stats.items()
        }
        for span in self.spans:
            if span.end is None:
                continue
            duration = span.duration_s
            entry = stats.get(span.name)
            if entry is None:
                stats[span.name] = [1, duration, duration]
            else:
                entry[0] += 1
                entry[1] += duration
                if duration > entry[2]:
                    entry[2] = duration
        out = []
        for name, (count, total, peak) in stats.items():
            out.append((name, int(count), total, total / count, peak))
        out.sort(key=lambda row: (-row[2], row[0]))
        return out

    def write_jsonl(self, path: str) -> str:
        """Write every span as one JSON line; atomic, deterministic bytes.

        With streaming enabled, ``path`` must be the streamed path: the
        resident remainder is appended and the finished file is
        atomically installed, byte-identical to a non-streamed write.
        """
        if self._stream_handle is not None:
            if os.path.abspath(path) != self._stream_path:
                raise ValueError(
                    f"tracer is streaming to {self._stream_path!r}; "
                    f"cannot write to {path!r}"
                )
            self._write_spans(self.spans, account=True)
            self.flushed_spans += len(self.spans)
            del self.spans[:]
            self._stream_handle.close()
            self._stream_handle = None
            os.replace(self._stream_tmp, self._stream_path)
            self._stream_tmp = None
            return path
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".trace-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                for span in self.spans:
                    handle.write(json.dumps(span.to_record(), sort_keys=True))
                    handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path


class NullTracer:
    """Do-nothing tracer standing in when tracing is disabled.

    Shares the :class:`Tracer` surface so instrumentation never branches
    on the tracer type — only on :attr:`enabled`, which hot paths test
    before building any attribute dicts.
    """

    enabled = False
    spans: Tuple[Span, ...] = ()

    _NULL_SPAN = Span(0, "null", 0.0, end=0.0)

    class _NullScope:
        def __enter__(self):
            return NullTracer._NULL_SPAN

        def __exit__(self, exc_type, exc, tb):
            return None

    _NULL_SCOPE = _NullScope()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        return None

    @property
    def now(self) -> float:
        return 0.0

    def start_span(self, name: str, parent: Optional[Span] = None, **attrs: Any) -> Span:
        return self._NULL_SPAN

    def finish_span(self, span: Span, **attrs: Any) -> Span:
        return self._NULL_SPAN

    def span(self, name: str, parent: Optional[Span] = None, **attrs: Any):
        return self._NULL_SCOPE

    def add_span(self, name, start, end, parent=None, **attrs) -> Span:
        return self._NULL_SPAN

    def event(self, name: str, **attrs: Any) -> Span:
        return self._NULL_SPAN

    def find(self, name: str) -> List[Span]:
        return []

    def breakdown(self) -> List[Tuple[str, int, float, float, float]]:
        return []

    def write_jsonl(self, path: str) -> str:
        raise RuntimeError("tracing is disabled; no trace to write")


#: Shared no-op tracer used whenever tracing is off.
NULL_TRACER = NullTracer()


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a trace written by :meth:`Tracer.write_jsonl`."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
