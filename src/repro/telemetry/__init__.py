"""Always-on observability for the reproduction: tracing + metrics.

The paper evaluates E-STREAMHUB through internal signals — per-slice
probes on heartbeats, migration phase timings, end-to-end delays — and
this package makes those signals first-class instead of post-hoc: a
span-based :class:`~repro.telemetry.tracing.Tracer` follows publications
and migrations on the simulation clock, and a
:class:`~repro.telemetry.registry.MetricsRegistry` counts what the
engine does, sampled on the existing heartbeat path.

One :class:`Telemetry` object bundles both and is threaded through the
stack via ``HubConfig(telemetry=...)``::

    from repro.telemetry import Telemetry

    tel = Telemetry(env)                  # tracing + metrics on
    config = HubConfig(..., telemetry=tel)
    ...
    env.run()
    print(tel.metrics.render())           # registry snapshot table
    tel.tracer.write_jsonl("trace.jsonl") # deterministic span trace

Everything is zero-cost when absent: components hold ``telemetry=None``
by default, instrumented hot paths guard with a single ``is None`` test,
and a constructed-but-disabled bundle (``Telemetry.disabled(env)``)
degrades to a no-op tracer plus ``None`` instruments, asserted to cost
< 3% wall-clock in ``benchmarks/bench_pipeline.py``.  Tracing and
metrics never schedule simulation events, so enabling them does not
change simulated behavior, and all timestamps come from the DES clock —
traces are reproducible run-to-run.  The full span/metric catalog lives
in OBSERVABILITY.md.
"""

from __future__ import annotations

from typing import Optional

from .export import to_prometheus, write_prometheus, write_snapshot_json
from .registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .tracing import NULL_TRACER, NullTracer, Span, Tracer, read_jsonl

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Telemetry",
    "Tracer",
    "read_jsonl",
    "to_prometheus",
    "write_prometheus",
    "write_snapshot_json",
]

#: Migration-duration histograms need coarser buckets than event hops.
_MIGRATION_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 30.0)


class Telemetry:
    """Bundle of one tracer and one metric registry for a deployment.

    ``env`` supplies the clock (``env.now``); pass ``None`` to bind it
    later (``StreamHub`` binds automatically when it first sees the
    bundle).  ``tracing=False`` swaps in the shared :data:`NULL_TRACER`;
    ``metrics=False`` leaves :attr:`metrics` (and every pre-declared
    instrument attribute) as ``None`` — the states instrumented call
    sites test for.

    All standard instruments are declared here, once, so every layer of
    the stack shares the same families (see OBSERVABILITY.md for the
    catalog with meanings and units).
    """

    def __init__(self, env=None, tracing: bool = True, metrics: bool = True):
        self.env = env
        if tracing:
            self.tracer: Tracer = Tracer()
            if env is not None:
                self.tracer.bind_clock(lambda: env.now)
        else:
            self.tracer = NULL_TRACER
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None
        )
        self._declare_instruments()

    @classmethod
    def disabled(cls, env=None) -> "Telemetry":
        """A fully disabled bundle (no-op tracer, no registry).

        Binding it exercises the real guard branches without recording
        anything — what the benchmark overhead guard measures.
        """
        return cls(env, tracing=False, metrics=False)

    @property
    def enabled(self) -> bool:
        """True when at least one of tracing/metrics records anything."""
        return self.tracer.enabled or self.metrics is not None

    def bind_env(self, env) -> None:
        """Attach the simulation environment driving the trace clock."""
        self.env = env
        self.tracer.bind_clock(lambda: env.now)

    # -- standard instruments -------------------------------------------------

    def _declare_instruments(self) -> None:
        m = self.metrics
        if m is None:
            self.events_routed = None
            self.events_processed = None
            self.batches_coalesced = None
            self.events_coalesced = None
            self.net_messages = None
            self.net_batches = None
            self.net_bytes = None
            self.transport_flushes = None
            self.transport_stall = None
            self.transport_spill_depth = None
            self.transport_credits_outstanding = None
            self.matcher_publications = None
            self.matcher_matches = None
            self.match_pool_inflight_batches = None
            self.match_pool_queued_tasks = None
            self.match_worker_busy_fraction = None
            self.match_matrix_resyncs = None
            self.store_chunk_faults = None
            self.store_chunk_evictions = None
            self.store_resident_chunks = None
            self.store_resident_bytes = None
            self.shard_operations = None
            self.notification_delay = None
            self.migrations = None
            self.migration_state_bytes = None
            self.migration_duration = None
            self.migration_interruption = None
            self.rule_firings = None
            self.scaling_decisions = None
            self.signal_violations = None
            self.scale_in_vetoes = None
            self.slo_margin = None
            self.faults_injected = None
            self.manager_failovers = None
            self.dead_letter_events = None
            self.partition_drops = None
            self.watchdog_timeouts = None
            self.breaker_trips = None
            self.heartbeats = None
            self.engine_hosts = None
            self.slice_queue_depth = None
            self.slice_cpu_cores = None
            self.slice_state_bytes = None
            self.host_cpu_utilization = None
            return
        # Event plane.
        self.events_routed = m.counter(
            "engine_events_routed_total",
            "Events routed between slices (after broadcast fan-out)",
            labels=("operator",),
        )
        self.events_processed = m.counter(
            "engine_events_processed_total",
            "Events fully processed by slice workers",
            labels=("operator",),
        )
        self.batches_coalesced = m.counter(
            "engine_batches_coalesced_total",
            "Coalesced batches (size > 1) executed by slice workers",
            labels=("operator",),
        )
        self.events_coalesced = m.counter(
            "engine_events_coalesced_total",
            "Events that travelled inside coalesced batches",
            labels=("operator",),
        )
        self.net_messages = m.counter(
            "net_messages_sent_total", "Messages handed to the network fabric"
        )
        self.net_batches = m.counter(
            "net_batches_sent_total", "Grouped transfers (send_batch calls)"
        )
        self.net_bytes = m.counter(
            "net_bytes_sent_total", "Bytes handed to the network fabric",
            unit="bytes",
        )
        # Flow-controlled transport (repro.transport channels).
        self.transport_flushes = m.counter(
            "transport_flushes_total",
            "Channel flushes by cause (eager/full/deadline/credit)",
            labels=("cause",),
        )
        self.transport_stall = m.histogram(
            "transport_stall_seconds",
            "Time credit-starved channels spent waiting before sending",
            unit="seconds",
        )
        self.transport_spill_depth = m.gauge(
            "transport_spill_depth",
            "Messages parked behind the slice's credit-starved channels "
            "at the last heartbeat",
            labels=("slice",),
        )
        self.transport_credits_outstanding = m.gauge(
            "transport_credits_outstanding",
            "Send credits held by in-flight/queued messages toward the "
            "slice at the last heartbeat",
            labels=("slice",),
        )
        # Matching plane.
        self.matcher_publications = m.counter(
            "matcher_publications_total", "Publications filtered by M slices"
        )
        self.matcher_matches = m.counter(
            "matcher_matches_total",
            "Subscriptions matched across all filtered publications",
        )
        # Parallel matching worker pool (repro.parallel; wall-clock-side
        # signals about real worker processes, not simulated quantities).
        self.match_pool_inflight_batches = m.gauge(
            "match_pool_inflight_batches",
            "Publication batches submitted to the matching pool, not yet collected",
        )
        self.match_pool_queued_tasks = m.gauge(
            "match_pool_queued_tasks",
            "Chunk tasks submitted to the matching pool, not yet collected",
        )
        self.match_worker_busy_fraction = m.gauge(
            "match_worker_busy_fraction",
            "Fraction of wall-clock time each matching worker spent computing",
            labels=("worker",),
        )
        self.match_matrix_resyncs = m.counter(
            "match_matrix_resyncs_total",
            "Full packed-matrix re-ships to matching workers (vs incremental deltas)",
        )
        # Out-of-core packed-row store (repro.filtering.store; wall-clock
        # side residency of mmap chunks, not simulated quantities).
        self.store_chunk_faults = m.counter(
            "store_chunk_faults_total",
            "Evicted packed-row chunks mapped back in on access",
            labels=("store",),
        )
        self.store_chunk_evictions = m.counter(
            "store_chunk_evictions_total",
            "Packed-row chunks flushed and dropped to honor the memory budget",
            labels=("store",),
        )
        self.store_resident_chunks = m.gauge(
            "store_resident_chunks",
            "Packed-row chunks currently mapped in memory",
            labels=("store",),
        )
        self.store_resident_bytes = m.gauge(
            "store_resident_bytes",
            "Bytes of packed-row chunk data currently mapped in memory",
            unit="bytes",
            labels=("store",),
        )
        self.shard_operations = m.counter(
            "shard_operations_total",
            "Completed runtime shard reconfigurations (split/merge)",
            labels=("op",),
        )
        self.notification_delay = m.histogram(
            "notification_delay_seconds",
            "End-to-end publication-to-notification delay",
            unit="seconds",
        )
        # Migration protocol.
        self.migrations = m.counter(
            "migrations_total", "Completed live slice migrations"
        )
        self.migration_state_bytes = m.counter(
            "migration_state_bytes_total",
            "Slice state serialized and transferred by migrations",
            unit="bytes",
        )
        self.migration_duration = m.histogram(
            "migration_duration_seconds",
            "Wall-to-wall duration of completed migrations",
            unit="seconds",
            buckets=_MIGRATION_BUCKETS,
        )
        self.migration_interruption = m.histogram(
            "migration_interruption_seconds",
            "Stop-copy-resume service interruption of completed migrations",
            unit="seconds",
            buckets=_MIGRATION_BUCKETS,
        )
        # Elasticity control loop.
        self.rule_firings = m.counter(
            "enforcer_rule_firings_total",
            "Policy violations handed to the enforcer",
            labels=("rule",),
        )
        self.scaling_decisions = m.counter(
            "enforcer_decisions_total",
            "Non-empty scaling decisions produced by the enforcer",
            labels=("kind",),
        )
        self.signal_violations = m.counter(
            "policy_signal_violations_total",
            "Violations raised by policy signals, including rounds lost "
            "in arbitration or spent inside a grace period",
            labels=("signal", "kind"),
        )
        self.scale_in_vetoes = m.counter(
            "policy_scale_in_vetoes_total",
            "Scale-in requests suppressed by a vetoing signal",
            labels=("signal",),
        )
        self.slo_margin = m.gauge(
            "policy_slo_margin_seconds",
            "Target SLO minus the windowed p99 notification delay "
            "(negative while the SLO is breached)",
            unit="seconds",
        )
        # Chaos / resilience (see RESILIENCE.md for the catalog).
        self.faults_injected = m.counter(
            "faults_injected_total",
            "Faults injected by a FaultPlan, by kind "
            "(host_crash/rack_loss/partition/heal/manager_crash)",
            labels=("kind",),
        )
        self.manager_failovers = m.counter(
            "manager_failovers_total",
            "Standby managers elected and resumed after a manager crash",
        )
        self.dead_letter_events = m.counter(
            "dead_letter_events_total",
            "Events parked in the dead-letter queue because their "
            "destination slice is unrecoverable",
        )
        self.partition_drops = m.counter(
            "net_partition_drops_total",
            "Messages dropped at send time by an active network partition",
        )
        self.watchdog_timeouts = m.counter(
            "watchdog_timeouts_total",
            "Stuck operations interrupted by a watchdog timer",
        )
        self.breaker_trips = m.counter(
            "transport_breaker_trips_total",
            "Per-channel circuit breakers opened on a partitioned link",
        )
        self.heartbeats = m.counter(
            "heartbeats_total", "Probe rounds collected by the manager"
        )
        self.engine_hosts = m.gauge(
            "engine_hosts", "Engine hosts currently managed"
        )
        self.slice_queue_depth = m.gauge(
            "slice_queue_depth", "Inbox length at the last heartbeat",
            labels=("slice",),
        )
        self.slice_cpu_cores = m.gauge(
            "slice_cpu_cores",
            "Average cores consumed by the slice over the last probe window",
            labels=("slice",),
        )
        self.slice_state_bytes = m.gauge(
            "slice_state_bytes",
            "Probe-reported state footprint (migration cost signal)",
            unit="bytes",
            labels=("slice",),
        )
        self.host_cpu_utilization = m.gauge(
            "host_cpu_utilization",
            "Average host CPU utilization over the last probe window",
            labels=("host",),
        )
