"""Interface of filtering libraries.

STREAMHUB performs matching via external filtering libraries attached to
each Matching-operator slice: the slice stores incoming subscriptions in
the library and, for each incoming publication, asks it for the list of
matching subscriber identifiers.  The engine is agnostic to the scheme —
plain or encrypted — which is exactly what lets E-STREAMHUB claim
independence from the filtering model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Sequence

__all__ = ["FilteringLibrary"]


class FilteringLibrary(ABC):
    """Stores subscription filters and matches publications against them."""

    @abstractmethod
    def store(self, sub_id: int, filter_data: Any) -> None:
        """Store (or replace) the filter of subscription ``sub_id``."""

    @abstractmethod
    def remove(self, sub_id: int) -> None:
        """Forget subscription ``sub_id`` (KeyError if unknown)."""

    @abstractmethod
    def match(self, publication_data: Any) -> List[int]:
        """Ids of stored subscriptions whose filter matches the publication."""

    def match_batch(self, publications: Sequence[Any]) -> List[List[int]]:
        """Match several publications at once: one id list per publication.

        Results are defined to equal ``[self.match(p) for p in publications]``
        — implementations may override this default with a vectorized kernel
        (ASPE evaluates the whole batch as one matrix-matrix product) but
        must preserve the per-publication decisions and their order.
        """
        return [self.match(publication) for publication in publications]

    @abstractmethod
    def subscription_count(self) -> int:
        """Number of stored subscriptions."""

    @abstractmethod
    def state_size_bytes(self) -> int:
        """Approximate serialized size of the stored state (for migration)."""

    @abstractmethod
    def export_state(self) -> Dict[int, Any]:
        """Serializable snapshot of the stored subscriptions."""

    @abstractmethod
    def import_state(self, state: Dict[int, Any]) -> None:
        """Replace the stored subscriptions with ``state`` (migration)."""
