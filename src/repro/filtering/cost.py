"""Calibrated CPU/size cost model for the simulated deployment.

The discrete-event simulation charges CPU time and message bytes according
to this model.  The constants are calibrated against the paper's reported
numbers (DESIGN.md §5):

* Figure 6: 12 hosts (6 matching hosts = 48 cores) sustain 422 pub/s with
  100 K stored ASPE subscriptions = 42.2 M encrypted match operations per
  second, i.e. ≈ 1.14 µs per operation at d = 4.  The ASPE cost is
  quadratic in d, so the per-operation cost scales with (d/4)².
* Table I: stateless AP slices migrate in ≈ 232 ms (pure orchestration and
  handoff), EP in ≈ 275 ms; M migrations add per-subscription
  serialization CPU plus the state transfer over the 1 Gbps NIC.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """All calibrated constants in one place (immutable, documented)."""

    #: Number of publication/subscription attributes in the ASPE schema.
    attributes: int = 4

    #: Seconds of one encrypted match operation at d = 4 (see module doc).
    aspe_match_op_s: float = 1.14e-6

    #: Seconds of one plaintext brute-force predicate evaluation.
    plain_match_op_s: float = 0.08e-6

    #: AP processing of one incoming publication or subscription
    #: (decode + route); the AP is stateless and cheap.
    ap_event_s: float = 25e-6

    #: Fixed per-publication overhead at an M slice (besides matching).
    m_base_s: float = 60e-6

    #: EP cost of merging one partial matching list.
    ep_partial_s: float = 12e-6

    #: EP cost of preparing/sending one subscriber notification.
    ep_notification_s: float = 2.0e-6

    #: Wire size of one encrypted publication message.
    publication_bytes: int = 512

    #: Wire size of one encrypted subscription (also its in-memory state
    #: footprint inside an M slice, dominating migration transfers).
    subscription_bytes: int = 4096

    #: Wire size of a partial matching list, per contained subscriber id.
    match_entry_bytes: int = 16

    #: Fixed framing of any inter-slice message.
    frame_bytes: int = 64

    #: Wire size of one notification to one subscriber.
    notification_bytes: int = 256

    #: CPU seconds to serialize/deserialize one subscription during an
    #: M-slice state migration.
    migration_serialize_sub_s: float = 20e-6

    #: Fixed orchestration overhead of any slice migration (rewiring the
    #: DAG, queue synchronization, configuration update round-trips).
    migration_overhead_s: float = 0.22

    #: Transient per-publication EP state footprint (pending match lists).
    ep_pending_bytes: int = 2048

    #: Baseline memory footprint of any deployed slice.
    slice_base_bytes: int = 16 * 1024 * 1024

    def match_cost_s(self, stored_subscriptions: int, encrypted: bool = True) -> float:
        """CPU seconds to match one publication at one M slice."""
        per_op = self.aspe_match_op_s * (self.attributes / 4.0) ** 2 if encrypted \
            else self.plain_match_op_s
        return self.m_base_s + stored_subscriptions * per_op

    def match_list_bytes(self, entries: int) -> int:
        """Wire size of a partial matching list with ``entries`` ids."""
        return self.frame_bytes + entries * self.match_entry_bytes

    def m_state_bytes(self, stored_subscriptions: int) -> int:
        """State footprint of an M slice holding that many subscriptions."""
        return self.slice_base_bytes + stored_subscriptions * self.subscription_bytes

    def migration_serialize_s(self, stored_subscriptions: int) -> float:
        """CPU seconds to (de)serialize an M slice's state once."""
        return stored_subscriptions * self.migration_serialize_sub_s
