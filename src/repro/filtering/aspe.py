"""ASPE encrypted content-based filtering.

Implements asymmetric scalar-product-preserving encryption (ASPE, Wong et
al., adapted to pub/sub filtering by Choi et al. — the paper's ref [11]).
Matching happens on ciphertexts only; neither publication attribute values
nor subscription constants are revealed to the matching host.

Construction
------------
Let ``d`` be the number of attributes.  The secret key is a random
invertible matrix ``M`` of size ``n×n`` with ``n = d + 3`` (d attribute
coordinates, one constant coordinate, two noise coordinates).

* A publication with attributes ``x ∈ R^d`` is encoded as the plaintext
  vector ``u = r · (x₁, …, x_d, 1, α, γ)`` with secret per-encryption
  randomness ``r > 0`` and noise ``α, γ``; its ciphertext is ``û = Mᵀ u``.
* A subscription predicate ``x_i op c`` is encoded as
  ``q = s · (δ₁, …, δ_d, −c, 0, 0)`` with ``δ_j = 1`` iff ``j = i`` and
  secret ``s > 0``; its ciphertext is ``q̂ = M⁻¹ q``.

Then ``û · q̂ = uᵀ M M⁻¹ q = r·s·(x_i − c)``: the *sign* of the inner
product decides the comparison while the magnitude is blinded by ``r·s``
and the ciphertext coordinates are mixed by ``M``.  Each predicate check is
an ``n``-dimensional inner product, so matching one publication against a
subscription with ``k`` predicates costs ``O(k·d)`` multiplications —
``O(d²)`` for the typical ``k ≈ d``, matching the paper's cost statement.

Equality predicates are evaluated as the conjunction of ``≥`` and ``≤``
using two query vectors.  Floating-point noise from the two matrix
multiplications is absorbed by a relative tolerance on the decision
boundary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import FilteringLibrary
from .predicates import Op, Predicate, PredicateSet

__all__ = [
    "AspeKey",
    "AspeCipher",
    "EncryptedPublication",
    "EncryptedPredicate",
    "EncryptedSubscription",
    "AspeLibrary",
]

# Boundary tolerance: |û·q̂| below tol·scale counts as "equal".  The scale
# is carried with each ciphertext pair via the blinding bounds.
_REL_TOL = 1e-7


@dataclass(frozen=True)
class AspeKey:
    """The secret key: dimension and the invertible mixing matrix."""

    dimensions: int
    matrix: np.ndarray
    inverse: np.ndarray

    @classmethod
    def generate(cls, dimensions: int, rng: Optional[random.Random] = None) -> "AspeKey":
        """Generate a fresh key for a ``dimensions``-attribute schema."""
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        rng = rng or random.Random()
        n = dimensions + 3
        np_rng = np.random.default_rng(rng.getrandbits(63))
        while True:
            matrix = np_rng.uniform(-1.0, 1.0, size=(n, n))
            # Reject ill-conditioned draws to keep decisions numerically crisp.
            if np.linalg.cond(matrix) < 1e4:
                break
        inverse = np.linalg.inv(matrix)
        return cls(dimensions=dimensions, matrix=matrix, inverse=inverse)

    @property
    def cipher_dimensions(self) -> int:
        return self.dimensions + 3


@dataclass(frozen=True)
class EncryptedPublication:
    """Ciphertext of one publication (``û = Mᵀ u``)."""

    vector: np.ndarray

    @property
    def size_bytes(self) -> int:
        return self.vector.nbytes + 16


@dataclass(frozen=True)
class EncryptedPredicate:
    """Ciphertext of one predicate: query vector(s) + comparison direction.

    ``op_code`` keeps only the comparison *direction and strictness* —
    which attribute and constant are compared is hidden inside the vector.
    """

    op_code: str  # one of 'gt', 'ge', 'lt', 'le'
    vector: np.ndarray


@dataclass(frozen=True)
class EncryptedSubscription:
    """Ciphertext of a subscription: conjunction of encrypted predicates."""

    predicates: Tuple[EncryptedPredicate, ...]

    @property
    def size_bytes(self) -> int:
        return sum(p.vector.nbytes + 24 for p in self.predicates) + 16


class AspeCipher:
    """Encrypts publications and subscriptions under an :class:`AspeKey`."""

    def __init__(self, key: AspeKey, rng: Optional[random.Random] = None):
        self.key = key
        self._rng = rng or random.Random()

    # -- encryption -----------------------------------------------------------

    def encrypt_publication(self, attributes: Sequence[float]) -> EncryptedPublication:
        d = self.key.dimensions
        if len(attributes) != d:
            raise ValueError(f"expected {d} attributes, got {len(attributes)}")
        r = self._rng.uniform(0.5, 2.0)
        alpha = self._rng.uniform(-10.0, 10.0)
        gamma = self._rng.uniform(-10.0, 10.0)
        u = np.empty(d + 3)
        u[:d] = attributes
        u[d] = 1.0
        u[d + 1] = alpha
        u[d + 2] = gamma
        u *= r
        return EncryptedPublication(vector=self.key.matrix.T @ u)

    def encrypt_predicate(self, predicate: Predicate) -> List[EncryptedPredicate]:
        """Encrypt one predicate (two ciphertexts for equality)."""
        d = self.key.dimensions
        if predicate.attribute >= d:
            raise ValueError(
                f"predicate attribute {predicate.attribute} outside schema of {d}"
            )
        if predicate.op is Op.EQ:
            return [
                self._encrypt_comparison(predicate.attribute, predicate.constant, "ge"),
                self._encrypt_comparison(predicate.attribute, predicate.constant, "le"),
            ]
        op_code = {Op.GT: "gt", Op.GE: "ge", Op.LT: "lt", Op.LE: "le"}[predicate.op]
        return [self._encrypt_comparison(predicate.attribute, predicate.constant, op_code)]

    def encrypt_subscription(self, predicate_set: PredicateSet) -> EncryptedSubscription:
        encrypted: List[EncryptedPredicate] = []
        for predicate in predicate_set:
            encrypted.extend(self.encrypt_predicate(predicate))
        return EncryptedSubscription(predicates=tuple(encrypted))

    def _encrypt_comparison(self, attribute: int, constant: float, op_code: str) -> EncryptedPredicate:
        d = self.key.dimensions
        s = self._rng.uniform(0.5, 2.0)
        q = np.zeros(d + 3)
        q[attribute] = 1.0
        q[d] = -constant
        q *= s
        return EncryptedPredicate(op_code=op_code, vector=self.key.inverse @ q)


def _decide(op_code: str, product: float, tolerance: float) -> bool:
    if op_code == "gt":
        return product > tolerance
    if op_code == "ge":
        return product >= -tolerance
    if op_code == "lt":
        return product < -tolerance
    if op_code == "le":
        return product <= tolerance
    raise ValueError(f"unknown op code {op_code!r}")


def match_encrypted(
    publication: EncryptedPublication, subscription: EncryptedSubscription
) -> bool:
    """Evaluate the encrypted conjunction: does the publication match?"""
    u = publication.vector
    scale = float(np.linalg.norm(u)) + 1.0
    for predicate in subscription.predicates:
        product = float(u @ predicate.vector)
        tolerance = _REL_TOL * scale * (float(np.linalg.norm(predicate.vector)) + 1.0)
        if not _decide(predicate.op_code, product, tolerance):
            return False
    return True


class AspeLibrary(FilteringLibrary):
    """Filtering library over ASPE ciphertexts.

    Because ciphertexts reveal nothing exploitable for indexing, every
    publication must be matched against *every* stored subscription — the
    property that makes encrypted filtering computationally heavy and the
    paper's experiments workload-independent.

    When many subscriptions are stored, the per-predicate inner products are
    evaluated with a vectorized batch product over a packed matrix.
    """

    def __init__(self) -> None:
        self._subs: Dict[int, EncryptedSubscription] = {}
        self._packed: Optional[Tuple[np.ndarray, List[Tuple[int, str]], List[Tuple[int, int]]]] = None

    def store(self, sub_id: int, filter_data: EncryptedSubscription) -> None:
        if not isinstance(filter_data, EncryptedSubscription):
            raise TypeError(
                f"expected EncryptedSubscription, got {type(filter_data).__name__}"
            )
        self._subs[sub_id] = filter_data
        self._packed = None

    def remove(self, sub_id: int) -> None:
        del self._subs[sub_id]
        self._packed = None

    def match(self, publication_data: EncryptedPublication) -> List[int]:
        if not isinstance(publication_data, EncryptedPublication):
            raise TypeError(
                f"expected EncryptedPublication, got {type(publication_data).__name__}"
            )
        if not self._subs:
            return []
        matrix, ops, spans = self._pack()
        u = publication_data.vector
        products = matrix @ u
        scale = float(np.linalg.norm(u)) + 1.0
        matched: List[int] = []
        for sub_id, (start, stop) in spans:
            ok = True
            for row in range(start, stop):
                tolerance = _REL_TOL * scale * ops[row][1]
                if not _decide(ops[row][0], float(products[row]), tolerance):
                    ok = False
                    break
            if ok:
                matched.append(sub_id)
        return matched

    def subscription_count(self) -> int:
        return len(self._subs)

    def state_size_bytes(self) -> int:
        return sum(s.size_bytes for s in self._subs.values())

    def export_state(self) -> Dict[int, EncryptedSubscription]:
        return dict(self._subs)

    def import_state(self, state: Dict[int, EncryptedSubscription]) -> None:
        self._subs = dict(state)
        self._packed = None

    def _pack(self):
        if self._packed is None:
            rows: List[np.ndarray] = []
            ops: List[Tuple[str, float]] = []
            spans: List[Tuple[int, Tuple[int, int]]] = []
            for sub_id, subscription in self._subs.items():
                start = len(rows)
                for predicate in subscription.predicates:
                    rows.append(predicate.vector)
                    ops.append(
                        (predicate.op_code, float(np.linalg.norm(predicate.vector)) + 1.0)
                    )
                spans.append((sub_id, (start, len(rows))))
            self._packed = (np.vstack(rows), ops, spans)
        return self._packed
