"""ASPE encrypted content-based filtering.

Implements asymmetric scalar-product-preserving encryption (ASPE, Wong et
al., adapted to pub/sub filtering by Choi et al. — the paper's ref [11]).
Matching happens on ciphertexts only; neither publication attribute values
nor subscription constants are revealed to the matching host.

Construction
------------
Let ``d`` be the number of attributes.  The secret key is a random
invertible matrix ``M`` of size ``n×n`` with ``n = d + 3`` (d attribute
coordinates, one constant coordinate, two noise coordinates).

* A publication with attributes ``x ∈ R^d`` is encoded as the plaintext
  vector ``u = r · (x₁, …, x_d, 1, α, γ)`` with secret per-encryption
  randomness ``r > 0`` and noise ``α, γ``; its ciphertext is ``û = Mᵀ u``.
* A subscription predicate ``x_i op c`` is encoded as
  ``q = s · (δ₁, …, δ_d, −c, 0, 0)`` with ``δ_j = 1`` iff ``j = i`` and
  secret ``s > 0``; its ciphertext is ``q̂ = M⁻¹ q``.

Then ``û · q̂ = uᵀ M M⁻¹ q = r·s·(x_i − c)``: the *sign* of the inner
product decides the comparison while the magnitude is blinded by ``r·s``
and the ciphertext coordinates are mixed by ``M``.  Each predicate check is
an ``n``-dimensional inner product, so matching one publication against a
subscription with ``k`` predicates costs ``O(k·d)`` multiplications —
``O(d²)`` for the typical ``k ≈ d``, matching the paper's cost statement.

Equality predicates are evaluated as the conjunction of ``≥`` and ``≤``
using two query vectors.  Floating-point noise from the two matrix
multiplications is absorbed by a relative tolerance on the decision
boundary.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import FilteringLibrary
from .predicates import Op, Predicate, PredicateSet
from .store.chunks import ChunkedMatrixStore
from .store.config import StoreConfig

__all__ = [
    "AspeKey",
    "AspeCipher",
    "EncryptedPublication",
    "EncryptedPredicate",
    "EncryptedSubscription",
    "AspeLibrary",
    "PackedMatrixView",
    "match_packed",
]

# Boundary tolerance: |û·q̂| below tol·scale counts as "equal".  The scale
# is carried with each ciphertext pair via the blinding bounds.  The value
# must sit between the dot-product rounding error (~n·eps·‖û‖·‖q̂‖ ≈
# 3e-15·‖û‖·‖q̂‖) and the smallest genuine decision margin, which is
# r·s·|value − constant| ≥ 0.25·|value − constant| and does *not* grow
# with the ciphertext norms — a tolerance much above the rounding error
# flips true non-matches near the boundary into matches.
_REL_TOL = 1e-13

#: Process-unique tokens for :class:`AspeLibrary` instances (see
#: :attr:`PackedMatrixView.token`).  ``itertools.count`` is atomic under
#: the GIL, so allocation needs no lock.
_INSTANCE_TOKENS = itertools.count(1)


@dataclass(frozen=True)
class AspeKey:
    """The secret key: dimension and the invertible mixing matrix."""

    dimensions: int
    matrix: np.ndarray
    inverse: np.ndarray

    @classmethod
    def generate(cls, dimensions: int, rng: Optional[random.Random] = None) -> "AspeKey":
        """Generate a fresh key for a ``dimensions``-attribute schema."""
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        rng = rng or random.Random()
        n = dimensions + 3
        np_rng = np.random.default_rng(rng.getrandbits(63))
        while True:
            matrix = np_rng.uniform(-1.0, 1.0, size=(n, n))
            # Reject ill-conditioned draws to keep decisions numerically crisp.
            if np.linalg.cond(matrix) < 1e4:
                break
        inverse = np.linalg.inv(matrix)
        return cls(dimensions=dimensions, matrix=matrix, inverse=inverse)

    @property
    def cipher_dimensions(self) -> int:
        return self.dimensions + 3


@dataclass(frozen=True)
class EncryptedPublication:
    """Ciphertext of one publication (``û = Mᵀ u``)."""

    vector: np.ndarray

    @property
    def size_bytes(self) -> int:
        return self.vector.nbytes + 16


@dataclass(frozen=True)
class EncryptedPredicate:
    """Ciphertext of one predicate: query vector(s) + comparison direction.

    ``op_code`` keeps only the comparison *direction and strictness* —
    which attribute and constant are compared is hidden inside the vector.
    """

    op_code: str  # one of 'gt', 'ge', 'lt', 'le'
    vector: np.ndarray


@dataclass(frozen=True)
class EncryptedSubscription:
    """Ciphertext of a subscription: conjunction of encrypted predicates."""

    predicates: Tuple[EncryptedPredicate, ...]

    @property
    def size_bytes(self) -> int:
        return sum(p.vector.nbytes + 24 for p in self.predicates) + 16


class AspeCipher:
    """Encrypts publications and subscriptions under an :class:`AspeKey`."""

    def __init__(self, key: AspeKey, rng: Optional[random.Random] = None):
        self.key = key
        self._rng = rng or random.Random()

    # -- encryption -----------------------------------------------------------

    def encrypt_publication(self, attributes: Sequence[float]) -> EncryptedPublication:
        d = self.key.dimensions
        if len(attributes) != d:
            raise ValueError(f"expected {d} attributes, got {len(attributes)}")
        r = self._rng.uniform(0.5, 2.0)
        alpha = self._rng.uniform(-10.0, 10.0)
        gamma = self._rng.uniform(-10.0, 10.0)
        u = np.empty(d + 3)
        u[:d] = attributes
        u[d] = 1.0
        u[d + 1] = alpha
        u[d + 2] = gamma
        u *= r
        return EncryptedPublication(vector=self.key.matrix.T @ u)

    def encrypt_predicate(self, predicate: Predicate) -> List[EncryptedPredicate]:
        """Encrypt one predicate (two ciphertexts for equality)."""
        d = self.key.dimensions
        if predicate.attribute >= d:
            raise ValueError(
                f"predicate attribute {predicate.attribute} outside schema of {d}"
            )
        if predicate.op is Op.EQ:
            return [
                self._encrypt_comparison(predicate.attribute, predicate.constant, "ge"),
                self._encrypt_comparison(predicate.attribute, predicate.constant, "le"),
            ]
        op_code = {Op.GT: "gt", Op.GE: "ge", Op.LT: "lt", Op.LE: "le"}[predicate.op]
        return [self._encrypt_comparison(predicate.attribute, predicate.constant, op_code)]

    def encrypt_subscription(self, predicate_set: PredicateSet) -> EncryptedSubscription:
        encrypted: List[EncryptedPredicate] = []
        for predicate in predicate_set:
            encrypted.extend(self.encrypt_predicate(predicate))
        return EncryptedSubscription(predicates=tuple(encrypted))

    def encrypt_subscriptions(
        self, predicate_sets: Sequence[PredicateSet]
    ) -> List[EncryptedSubscription]:
        """Encrypt many subscriptions with one matrix-matrix product.

        Builds every (EQ-expanded) query vector into one stacked block
        and applies ``M⁻¹`` as a single gemm — the trace-scale (1M+)
        subscription generation path.  Per-predicate blinding factors
        draw from the same stream in the same order as the scalar path,
        so the construction (and its security argument) is unchanged.
        """
        d = self.key.dimensions
        op_codes = {Op.GT: "gt", Op.GE: "ge", Op.LT: "lt", Op.LE: "le"}
        specs: List[Tuple[str, int, float]] = []
        counts: List[int] = []
        for predicate_set in predicate_sets:
            before = len(specs)
            for predicate in predicate_set:
                if predicate.attribute >= d:
                    raise ValueError(
                        f"predicate attribute {predicate.attribute} outside "
                        f"schema of {d}"
                    )
                if predicate.op is Op.EQ:
                    specs.append(("ge", predicate.attribute, predicate.constant))
                    specs.append(("le", predicate.attribute, predicate.constant))
                else:
                    specs.append(
                        (op_codes[predicate.op], predicate.attribute, predicate.constant)
                    )
            counts.append(len(specs) - before)
        queries = np.zeros((len(specs), d + 3))
        rng = self._rng
        for row, (_, attribute, constant) in enumerate(specs):
            s = rng.uniform(0.5, 2.0)
            queries[row, attribute] = 1.0
            queries[row, d] = -constant
            queries[row] *= s
        vectors = queries @ self.key.inverse.T
        out: List[EncryptedSubscription] = []
        row = 0
        for count in counts:
            out.append(
                EncryptedSubscription(
                    predicates=tuple(
                        EncryptedPredicate(
                            op_code=specs[row + i][0], vector=vectors[row + i]
                        )
                        for i in range(count)
                    )
                )
            )
            row += count
        return out

    def encrypt_publications(
        self, attribute_rows: Sequence[Sequence[float]]
    ) -> List[EncryptedPublication]:
        """Encrypt many publications with one matrix-matrix product."""
        d = self.key.dimensions
        rows = np.asarray(attribute_rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != d:
            raise ValueError(
                f"expected (count, {d}) attribute rows, got {rows.shape}"
            )
        count = rows.shape[0]
        u = np.empty((count, d + 3))
        u[:, :d] = rows
        u[:, d] = 1.0
        rng = self._rng
        for i in range(count):
            r = rng.uniform(0.5, 2.0)
            u[i, d + 1] = rng.uniform(-10.0, 10.0)
            u[i, d + 2] = rng.uniform(-10.0, 10.0)
            u[i] *= r
        encrypted = u @ self.key.matrix
        return [EncryptedPublication(vector=vector) for vector in encrypted]

    def _encrypt_comparison(self, attribute: int, constant: float, op_code: str) -> EncryptedPredicate:
        d = self.key.dimensions
        s = self._rng.uniform(0.5, 2.0)
        q = np.zeros(d + 3)
        q[attribute] = 1.0
        q[d] = -constant
        q *= s
        return EncryptedPredicate(op_code=op_code, vector=self.key.inverse @ q)


def _decide(op_code: str, product: float, tolerance: float) -> bool:
    if op_code == "gt":
        return product > tolerance
    if op_code == "ge":
        return product >= -tolerance
    if op_code == "lt":
        return product < -tolerance
    if op_code == "le":
        return product <= tolerance
    raise ValueError(f"unknown op code {op_code!r}")


def match_encrypted(
    publication: EncryptedPublication, subscription: EncryptedSubscription
) -> bool:
    """Evaluate the encrypted conjunction: does the publication match?"""
    u = publication.vector
    scale = float(np.linalg.norm(u)) + 1.0
    for predicate in subscription.predicates:
        product = float(u @ predicate.vector)
        tolerance = _REL_TOL * scale * (float(np.linalg.norm(predicate.vector)) + 1.0)
        if not _decide(predicate.op_code, product, tolerance):
            return False
    return True


#: Comparison direction per op code: +1 keeps the product sign, −1 flips
#: it, so every decision reduces to ``sign·product {>, ≥−} tolerance``.
_OP_SIGN = {"gt": 1.0, "ge": 1.0, "lt": -1.0, "le": -1.0}
#: Strict comparisons exclude the tolerance band, non-strict include it.
_OP_STRICT = {"gt": True, "ge": False, "lt": True, "le": False}

def _fresh_workspace(name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
    """Workspace provider allocating a fresh buffer per request."""
    return np.empty(shape, dtype=dtype)


def match_packed(
    matrix: np.ndarray,
    strict: np.ndarray,
    tol_signed: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    batch: np.ndarray,
    workspace=None,
) -> np.ndarray:
    """Evaluate packed (direction-folded) predicate rows against a batch.

    The shared matching kernel: ``matrix`` is a ``(rows, n)`` block of
    direction-folded query-vector rows with per-row ``strict`` flags and
    sign-folded tolerance bases ``tol_signed``; ``starts``/``stops`` are
    per-span row offsets *relative to this block*; ``batch`` is the
    ``(B, n)`` stack of publication ciphertext vectors.  Returns the
    ``(B, len(starts))`` boolean span-conjunction matrix.

    This function is *pure* — a deterministic function of its array
    arguments with no hidden state — which is what lets
    :mod:`repro.parallel` ship the packed rows to worker processes and
    still produce bit-identical decisions: the in-process
    :meth:`AspeLibrary.match_batch` path and the out-of-process path both
    run exactly this sequence of vectorized operations.  ``workspace``
    optionally supplies reusable scratch buffers (``(name, shape, dtype)
    -> ndarray``); the default allocates fresh ones, which is bit-wise
    equivalent.
    """
    if workspace is None:
        workspace = _fresh_workspace
    count = batch.shape[0]
    rows = matrix.shape[0]
    # Publication-major layout: every downstream reduction then runs
    # over contiguous per-publication rows.  All (B × rows) temporaries
    # come from the workspace and every ufunc writes in place.
    products = workspace("products", (count, rows), np.float64)
    np.matmul(batch, matrix.T, out=products)
    scales = np.linalg.norm(batch, axis=1)
    scales += 1.0
    thresholds = workspace("thresholds", (count, rows), np.float64)
    np.multiply(scales[:, None], tol_signed[None, :], out=thresholds)
    # Strict rows require product > scale·tol_base; non-strict rows
    # product ≥ −scale·tol_base.  With the sign folded into the
    # threshold both become "product > threshold", plus boundary
    # equality for the non-strict rows only.
    satisfied = workspace("satisfied", (count, rows), np.bool_)
    np.greater(products, thresholds, out=satisfied)
    boundary = workspace("boundary", (count, rows), np.bool_)
    np.equal(products, thresholds, out=boundary)
    np.logical_and(boundary, ~strict[None, :], out=boundary)
    np.logical_or(satisfied, boundary, out=satisfied)
    # Span conjunction via exclusive prefix sums of unsatisfied rows
    # (see AspeLibrary._reduce_spans), with the prefix buffer reused.
    np.logical_not(satisfied, out=boundary)
    prefix = workspace("prefix", (count, rows + 1), np.int32)
    prefix[:, 0] = 0
    np.cumsum(boundary, axis=1, out=prefix[:, 1:])
    return (prefix[:, stops] - prefix[:, starts]) == 0


@dataclass(frozen=True)
class PackedMatrixView:
    """Zero-copy view of a library's packed matching state.

    Produced by :meth:`AspeLibrary.packed_view` for the parallel matching
    executors.  All arrays are *views* into the library's live buffers —
    valid only until the next ``store``/``remove``/``import_state`` — and
    must not be mutated.

    ``token`` is unique per library *instance* in this process (a fresh
    value is drawn on construction and on unpickling), because ``epoch``
    and ``generation`` are per-instance counters: two views describe
    identical matching decisions only when *both* token and epoch are
    equal.  ``epoch`` advances on every semantic change
    (store/remove/import).  ``generation`` advances only when previously
    exported row *content* moved or changed (compaction, import): within
    one (token, generation) the rows below any previously observed
    ``rows`` cursor are immutable, which is what makes append-only
    dirty-row deltas sound.
    """

    token: int
    epoch: int
    generation: int
    rows: int
    width: int
    matrix: Optional[np.ndarray]  # (rows, n) or None before the first store
    strict: Optional[np.ndarray]
    tol_signed: Optional[np.ndarray]
    ids: List[int]
    positions: np.ndarray
    starts: np.ndarray
    stops: np.ndarray

    @property
    def span_count(self) -> int:
        return int(self.starts.size)


#: Initial row capacity of the packed predicate matrix.
_MIN_CAPACITY = 64
#: Compact once dead rows outnumber live ones (and exceed this floor), so
#: the matrix never carries more than 2× the live predicate rows.
_COMPACT_MIN_DEAD = 64


class AspeLibrary(FilteringLibrary):
    """Filtering library over ASPE ciphertexts.

    Because ciphertexts reveal nothing exploitable for indexing, every
    publication must be matched against *every* stored subscription — the
    property that makes encrypted filtering computationally heavy and the
    paper's experiments workload-independent.

    The predicate ciphertexts of all stored subscriptions live in one
    packed row matrix that is maintained *incrementally*: ``store`` appends
    rows into an amortized-doubling buffer, ``remove`` tombstones the
    subscription's row span, and compaction runs only when dead rows
    outnumber live ones — store/remove churn costs amortized O(rows
    touched), never a full repack.  Per-row tolerance norms and comparison
    directions are precomputed as ndarrays so a match is one matrix-vector
    product plus vectorized mask reductions (``np.logical_and.reduceat``
    over per-subscription row spans); :meth:`match_batch` evaluates a whole
    batch of publications as a single matrix-matrix product.
    """

    def __init__(self, store_config: Optional[StoreConfig] = None) -> None:
        self._subs: Dict[int, EncryptedSubscription] = {}
        #: How the packed rows are stored.  ``dense`` (the default) keeps
        #: the in-RAM amortized-doubling buffers below; ``chunked``/``mmap``
        #: delegate row storage to a :class:`ChunkedMatrixStore` so the
        #: matrix can exceed RAM (see repro.filtering.store).
        self._store_config = (
            store_config if store_config is not None else StoreConfig.from_env()
        )
        self._chunks: Optional[ChunkedMatrixStore] = (
            None
            if self._store_config.backend == "dense"
            else ChunkedMatrixStore(self._store_config)
        )
        #: Epoch-keyed contiguous materialization of the chunked rows for
        #: :meth:`packed_view` (the parallel executors need one flat
        #: matrix).  ``(epoch, matrix, strict, tol_signed)`` or ``None``.
        self._materialized = None
        self._telemetry = None
        #: Packed state: row buffer + per-row decision metadata.  Allocated
        #: lazily on the first store (the ciphertext width is unknown
        #: until then) and grown by doubling.  Rows are stored
        #: *direction-folded*: a ``lt``/``le`` query vector is negated on
        #: the way in (exact in IEEE arithmetic), so every decision is
        #: ``product {>, ≥−} tolerance`` with no per-row sign multiply.
        self._matrix: Optional[np.ndarray] = None
        self._strict: Optional[np.ndarray] = None
        #: Per-row ``_REL_TOL · (‖q̂‖ + 1)``; the decision tolerance is this
        #: times the publication's scale factor.
        self._tol_base: Optional[np.ndarray] = None
        #: Sign-folded tolerance base: ``+tol_base`` for strict rows,
        #: ``−tol_base`` for non-strict ones.  Folding the decision side
        #: into the sign is exact (IEEE negation commutes with scaling:
        #: ``s·(−a) == −(s·a)`` bit-for-bit) and lets :meth:`match_batch`
        #: evaluate all rows with one comparison pass instead of a
        #: strict/non-strict ``np.where`` over two full comparisons.
        self._tol_signed: Optional[np.ndarray] = None
        self._alive: Optional[np.ndarray] = None
        self._rows = 0  # buffer rows in use (live + tombstoned)
        self._dead_rows = 0
        #: sub_id → [start, stop) row span in the packed matrix.
        self._spans: Dict[int, Tuple[int, int]] = {}
        #: Lazily built span index for span reductions (see _span_index).
        self._index: Optional[
            Tuple[List[int], np.ndarray, np.ndarray, np.ndarray]
        ] = None
        #: Reusable scratch buffers for :meth:`match_batch` (name → flat
        #: array).  The batch temporaries are large enough (B × rows) to
        #: defeat numpy's small-allocation cache; reusing them removes the
        #: per-call mmap churn that made batching slower than the
        #: single-publication path.
        self._ws: Dict[str, np.ndarray] = {}
        #: Process-unique instance identity.  Epoch/generation counters
        #: are per-instance, so sync caches keyed on them must also key on
        #: the token — two *different* libraries can reach equal epochs.
        self._token = next(_INSTANCE_TOKENS)
        #: Bumped on every semantic mutation (store/remove/import); packed
        #: views with equal epochs describe identical matching decisions.
        self._epoch = 0
        #: Bumped only when previously packed row content moves or changes
        #: (compaction, import) — the append-only delta invariant of
        #: :class:`PackedMatrixView`.
        self._generation = 0
        # Instrumentation: churn benchmarks assert store/remove stays
        # incremental (appends, occasional compactions, no full repacks).
        self.rows_appended = 0
        self.compaction_count = 0
        self.full_pack_count = 0

    # -- storage --------------------------------------------------------------

    def store(self, sub_id: int, filter_data: EncryptedSubscription) -> None:
        if not isinstance(filter_data, EncryptedSubscription):
            raise TypeError(
                f"expected EncryptedSubscription, got {type(filter_data).__name__}"
            )
        if sub_id in self._subs:
            self._tombstone(sub_id)
        self._subs[sub_id] = filter_data
        self._append_rows(sub_id, filter_data)
        self._index = None
        self._epoch += 1
        self._maybe_compact()

    def remove(self, sub_id: int) -> None:
        del self._subs[sub_id]  # KeyError if unknown
        self._tombstone(sub_id)
        self._index = None
        self._epoch += 1
        self._maybe_compact()

    # -- matching -------------------------------------------------------------

    def match(self, publication_data: EncryptedPublication) -> List[int]:
        if not isinstance(publication_data, EncryptedPublication):
            raise TypeError(
                f"expected EncryptedPublication, got {type(publication_data).__name__}"
            )
        if not self._subs:
            return []
        ids, positions, starts, stops = self._span_index()
        if starts.size == 0:
            # Only empty (vacuously true) subscriptions are stored.
            return list(ids)
        u = publication_data.vector
        if self._chunks is not None:
            ok = self._match_single_streaming(u, starts, stops)
        else:
            rows = self._rows
            products = self._matrix[:rows] @ u
            scale = float(np.linalg.norm(u)) + 1.0
            satisfied = self._decide_rows(products, scale * self._tol_base[:rows])
            ok = self._reduce_spans(satisfied, starts, stops)
        result = np.ones(len(ids), dtype=bool)
        result[positions] = ok
        return [ids[i] for i in np.nonzero(result)[0]]

    def match_batch(
        self, publications: Sequence[EncryptedPublication]
    ) -> List[List[int]]:
        for publication in publications:
            if not isinstance(publication, EncryptedPublication):
                raise TypeError(
                    f"expected EncryptedPublication, got {type(publication).__name__}"
                )
        if not publications:
            return []
        if not self._subs:
            return [[] for _ in publications]
        ids, positions, starts, stops = self._span_index()
        if starts.size == 0:
            return [list(ids) for _ in publications]
        batch = np.stack([p.vector for p in publications])  # (B, n)
        if self._chunks is not None:
            ok = self._match_batch_streaming(batch, starts, stops)
        else:
            rows = self._rows
            # The shared kernel (also run by parallel matching workers)
            # with the reusable workspace — per-call allocation is what
            # made batching lose to the cached single-publication path.
            ok = match_packed(
                self._matrix[:rows],
                self._strict[:rows],
                self._tol_signed[:rows],
                starts,
                stops,
                batch,
                workspace=self._workspace,
            )
        result = np.ones((batch.shape[0], len(ids)), dtype=bool)
        result[:, positions] = ok
        return [[ids[i] for i in np.nonzero(row)[0]] for row in result]

    # -- bookkeeping ----------------------------------------------------------

    def subscription_count(self) -> int:
        return len(self._subs)

    def state_size_bytes(self) -> int:
        return sum(s.size_bytes for s in self._subs.values())

    def export_state(self) -> Dict[int, EncryptedSubscription]:
        return dict(self._subs)

    def import_state(self, state: Dict[int, EncryptedSubscription]) -> None:
        self._subs = {}
        self._matrix = None
        self._strict = self._tol_base = self._tol_signed = self._alive = None
        if self._chunks is not None:
            self._chunks.clear()
        self._rows = 0
        self._dead_rows = 0
        self._spans = {}
        self._index = None
        for sub_id, subscription in state.items():
            self._subs[sub_id] = subscription
            self._append_rows(sub_id, subscription)
        self._epoch += 1
        self._generation += 1
        self.full_pack_count += 1

    # -- bulk ingest and shard transfer ---------------------------------------

    def store_many(self, items) -> int:
        """Bulk-store ``(sub_id, EncryptedSubscription)`` pairs.

        One staging block, one norm reduction, one store append and one
        epoch bump for the whole batch — the 1M-subscription load path.
        The resulting packed rows, spans and match decisions are
        identical to storing the items one by one; batches containing
        duplicate or already-stored ids fall back to exactly that.
        """
        items = list(items)
        for _, subscription in items:
            if not isinstance(subscription, EncryptedSubscription):
                raise TypeError(
                    f"expected EncryptedSubscription, got "
                    f"{type(subscription).__name__}"
                )
        if not items:
            return 0
        ids = [sub_id for sub_id, _ in items]
        if len(set(ids)) != len(ids) or any(i in self._subs for i in ids):
            for sub_id, subscription in items:
                self.store(sub_id, subscription)
            return len(items)
        total = sum(len(s.predicates) for _, s in items)
        if total == 0:
            for sub_id, subscription in items:
                self._subs[sub_id] = subscription
                self._spans[sub_id] = (self._rows, self._rows)
            self._index = None
            self._epoch += 1
            return len(items)
        width = next(
            s.predicates[0].vector.shape[0] for _, s in items if s.predicates
        )
        block = np.empty((total, width))
        strict = np.empty(total, dtype=bool)
        bounds = []
        row = 0
        for sub_id, subscription in items:
            start = row
            for predicate in subscription.predicates:
                if _OP_SIGN[predicate.op_code] < 0.0:
                    np.negative(predicate.vector, out=block[row])
                else:
                    block[row] = predicate.vector
                strict[row] = _OP_STRICT[predicate.op_code]
                row += 1
            bounds.append((start, row))
        base = _REL_TOL * (np.linalg.norm(block, axis=1) + 1.0)
        tol_signed = np.where(strict, base, -base)
        if self._chunks is not None:
            offset, _ = self._chunks.append(block, strict, base, tol_signed)
        else:
            self._ensure_capacity(total, width)
            offset = self._rows
            self._matrix[offset : offset + total] = block
            self._strict[offset : offset + total] = strict
            self._tol_base[offset : offset + total] = base
            self._tol_signed[offset : offset + total] = tol_signed
            self._alive[offset : offset + total] = True
        self._rows = offset + total
        for (sub_id, subscription), (start, stop) in zip(items, bounds):
            self._subs[sub_id] = subscription
            self._spans[sub_id] = (offset + start, offset + stop)
        self.rows_appended += total
        self._index = None
        self._epoch += 1
        self._maybe_compact()
        return len(items)

    def absorb(self, other: "AspeLibrary") -> int:
        """Adopt every subscription (and packed row) of ``other``.

        The merge half of shard split/merge: under a chunked store the
        rows transfer as whole chunk objects — zero rows rewritten — and
        under the dense store as one bulk buffer copy.  ``other`` is left
        empty.  Returns the number of rows adopted.  Appending to self
        preserves the append-only delta invariant, so the generation does
        not advance.
        """
        if other is self:
            raise ValueError("cannot absorb a library into itself")
        if (self._chunks is None) != (other._chunks is None):
            raise ValueError("cannot absorb across store backends")
        overlap = self._subs.keys() & other._subs.keys()
        if overlap:
            raise ValueError(
                f"cannot absorb: {len(overlap)} overlapping subscription ids"
            )
        moved = other._rows
        base = self._rows
        if self._chunks is not None:
            self._chunks.adopt(other._chunks)
        elif other._matrix is not None and moved:
            self._ensure_capacity(moved, other._matrix.shape[1])
            stop = base + moved
            self._matrix[base:stop] = other._matrix[:moved]
            self._strict[base:stop] = other._strict[:moved]
            self._tol_base[base:stop] = other._tol_base[:moved]
            self._tol_signed[base:stop] = other._tol_signed[:moved]
            self._alive[base:stop] = other._alive[:moved]
        self._rows = base + moved
        self._dead_rows += other._dead_rows
        for sub_id, subscription in other._subs.items():
            start, stop = other._spans[sub_id]
            self._subs[sub_id] = subscription
            self._spans[sub_id] = (base + start, base + stop)
        self._index = None
        self._epoch += 1
        other._reset_empty()
        return moved

    def detach_suffix(self, boundary: int, sub_ids) -> Tuple["AspeLibrary", int]:
        """Split the store at row ``boundary``, moving ``sub_ids`` out.

        The split half of shard split/merge: every chunk fully past the
        boundary is *moved* into the new library; only the rows of the
        chunk the boundary cuts through are copied (the dense store
        copies the whole suffix — it has no chunks to adopt).  Every
        moving subscription's non-empty span must lie at or past the
        boundary and every staying one's before it.  Returns
        ``(new_library, copied_rows)``.
        """
        moving = set(sub_ids)
        for sub_id in moving:
            if sub_id not in self._subs:
                raise KeyError(sub_id)
        if not 0 <= boundary <= self._rows:
            raise ValueError(
                f"split boundary {boundary} outside [0, {self._rows}]"
            )
        for sub_id, (start, stop) in self._spans.items():
            if stop <= start:
                continue
            if sub_id in moving:
                if start < boundary:
                    raise ValueError(
                        f"moving subscription {sub_id} has rows below the "
                        f"split boundary"
                    )
            elif stop > boundary:
                raise ValueError(
                    f"staying subscription {sub_id} has rows at or past "
                    f"the split boundary"
                )
        new_lib = AspeLibrary(store_config=self._store_config)
        new_lib._telemetry = self._telemetry
        copied = 0
        if self._chunks is not None:
            new_lib._chunks, copied = self._chunks.split_at(boundary)
            new_lib._rows = new_lib._chunks.rows
            new_lib._dead_rows = new_lib._chunks.dead_rows
            self._rows = self._chunks.rows
            self._dead_rows = self._chunks.dead_rows
        else:
            rows = self._rows
            suffix = rows - boundary
            if suffix > 0 and self._matrix is not None:
                new_lib._ensure_capacity(suffix, self._matrix.shape[1])
                new_lib._matrix[:suffix] = self._matrix[boundary:rows]
                new_lib._strict[:suffix] = self._strict[boundary:rows]
                new_lib._tol_base[:suffix] = self._tol_base[boundary:rows]
                new_lib._tol_signed[:suffix] = self._tol_signed[boundary:rows]
                new_lib._alive[:suffix] = self._alive[boundary:rows]
                new_lib._rows = suffix
                new_lib._dead_rows = int(
                    suffix - new_lib._alive[:suffix].sum()
                )
                copied = suffix
                self._alive[boundary:rows] = False
                self._rows = boundary
                self._dead_rows = int(
                    boundary - self._alive[:boundary].sum()
                )
        for sub_id in [s for s in self._subs if s in moving]:
            subscription = self._subs.pop(sub_id)
            start, stop = self._spans.pop(sub_id)
            new_lib._subs[sub_id] = subscription
            if stop > start:
                new_lib._spans[sub_id] = (start - boundary, stop - boundary)
            else:
                new_lib._spans[sub_id] = (0, 0)
        self._index = None
        self._epoch += 1
        # Rows past the boundary vanished from this library: previously
        # exported row cursors are invalid, so the generation advances.
        self._generation += 1
        new_lib._index = None
        new_lib._epoch += 1
        return new_lib, copied

    def _reset_empty(self) -> None:
        """Empty this library in place (its state moved elsewhere)."""
        self._subs = {}
        self._spans = {}
        self._matrix = None
        self._strict = self._tol_base = self._tol_signed = self._alive = None
        if self._chunks is not None:
            self._chunks.clear()
        self._rows = 0
        self._dead_rows = 0
        self._index = None
        self._ws = {}
        self._materialized = None
        self._epoch += 1
        self._generation += 1

    # -- store configuration and observability --------------------------------

    @property
    def store_config(self) -> StoreConfig:
        return self._store_config

    def configure_store(self, config: StoreConfig) -> None:
        """Select the backing store (only while the library is empty)."""
        if config == self._store_config:
            return
        if self._subs or self._rows:
            raise ValueError(
                "cannot reconfigure the store of a non-empty library"
            )
        self._store_config = config
        self._chunks = (
            None
            if config.backend == "dense"
            else ChunkedMatrixStore(config)
        )
        self._materialized = None
        if self._telemetry is not None and self._chunks is not None:
            self._chunks.bind_telemetry(self._telemetry)

    def bind_telemetry(self, telemetry, label: str = "aspe") -> None:
        """Record store residency/fault/eviction activity into a bundle."""
        self._telemetry = telemetry
        if self._chunks is not None:
            self._chunks.bind_telemetry(telemetry, label)

    def store_stats(self) -> Dict[str, object]:
        """Backing-store residency statistics (see OBSERVABILITY.md)."""
        if self._chunks is not None:
            return self._chunks.stats()
        matrix = self._matrix
        row_bytes = 0 if matrix is None else (matrix.shape[1] + 2) * 8
        return {
            "backend": "dense",
            "chunk_rows": 0,
            "chunks": 0,
            "rows": self._rows,
            "dead_rows": self._dead_rows,
            "resident_chunks": 0,
            "resident_bytes": self._rows * row_bytes,
            "resident_peak_bytes": self._rows * row_bytes,
            "faults": 0,
            "evictions": 0,
        }

    def subscription_ids(self) -> List[int]:
        """Stored subscription ids in insertion order."""
        return list(self._subs)

    def get_subscription(self, sub_id: int) -> EncryptedSubscription:
        return self._subs[sub_id]

    def packed_view(self) -> PackedMatrixView:
        """Zero-copy :class:`PackedMatrixView` of the live packed state.

        Valid until the next mutation; see the view's docstring for the
        epoch/generation contract the parallel executors rely on.
        """
        ids, positions, starts, stops = self._span_index()
        rows = self._rows
        if self._chunks is not None:
            # The executors need one flat matrix; materialize contiguous
            # copies once per epoch.  Rows below any previously observed
            # cursor re-copy to identical bits within a generation (the
            # chunk data is unchanged), so append-only deltas stay sound.
            matrix = strict = tol_signed = None
            width = 0
            if self._chunks.width is not None:
                cached = self._materialized
                if cached is None or cached[0] != self._epoch:
                    matrix, strict, tol_signed = self._chunks.materialize()
                    self._materialized = (self._epoch, matrix, strict, tol_signed)
                else:
                    _, matrix, strict, tol_signed = cached
                width = int(self._chunks.width)
            return PackedMatrixView(
                token=self._token,
                epoch=self._epoch,
                generation=self._generation,
                rows=rows,
                width=width,
                matrix=matrix,
                strict=strict,
                tol_signed=tol_signed,
                ids=ids,
                positions=positions,
                starts=starts,
                stops=stops,
            )
        matrix = None if self._matrix is None else self._matrix[:rows]
        return PackedMatrixView(
            token=self._token,
            epoch=self._epoch,
            generation=self._generation,
            rows=rows,
            width=0 if self._matrix is None else int(self._matrix.shape[1]),
            matrix=matrix,
            strict=None if self._strict is None else self._strict[:rows],
            tol_signed=(
                None if self._tol_signed is None else self._tol_signed[:rows]
            ),
            ids=ids,
            positions=positions,
            starts=starts,
            stops=stops,
        )

    # -- pickling -------------------------------------------------------------

    def __getstate__(self):
        """Drop scratch state and trim buffers to the rows in use.

        Snapshots shipped to matching workers and ``export_state`` copies
        made during migration must not serialize dead weight: the
        workspace buffers (B × rows scratch), the lazily rebuilt span
        index, the derived tolerance caches (recomputed bit-identically
        from the stored rows) and the unused tail of the
        amortized-doubling buffers are all omitted.
        """
        state = self.__dict__.copy()
        state["_ws"] = {}
        state["_index"] = None
        state["_tol_base"] = None
        state["_tol_signed"] = None
        state["_materialized"] = None
        state["_telemetry"] = None
        rows = self._rows
        if self._chunks is not None:
            # Chunked stores serialize as the same trimmed flat-buffer
            # format as the dense path (chunk layout and residency are
            # process-local state, rebuilt on restore).
            del state["_chunks"]
            if rows:
                matrix, strict, alive = self._chunks.export_rows()
                state["_matrix"] = matrix
                state["_strict"] = strict
                state["_alive"] = alive
        elif self._matrix is not None:
            state["_matrix"] = np.ascontiguousarray(self._matrix[:rows])
            state["_strict"] = self._strict[:rows].copy()
            state["_alive"] = self._alive[:rows].copy()
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # A restored copy is a new instance whose counters continue from
        # the pickled values — it must not alias the source's sync
        # identity in any executor channel.
        self._token = next(_INSTANCE_TOKENS)
        if "_chunks" not in self.__dict__:
            # Chunked-store pickle: rebuild the chunk layout from the flat
            # buffers (the derived tolerance columns recompute
            # bit-identically from the rows).
            self._chunks = ChunkedMatrixStore(self._store_config)
            matrix = self._matrix
            if matrix is not None and matrix.shape[0]:
                strict = self._strict
                alive = self._alive
                base = _REL_TOL * (np.linalg.norm(matrix, axis=1) + 1.0)
                tol_signed = np.where(strict, base, -base)
                self._chunks.append(matrix, strict, base, tol_signed)
                dead = np.flatnonzero(~alive)
                if dead.size:
                    breaks = np.flatnonzero(np.diff(dead) > 1)
                    run_heads = np.concatenate(([0], breaks + 1))
                    run_tails = np.concatenate((breaks, [dead.size - 1]))
                    for head, tail in zip(run_heads, run_tails):
                        self._chunks.mark_dead(
                            int(dead[head]), int(dead[tail]) + 1
                        )
            self._matrix = None
            self._strict = self._alive = None
            return
        if self._matrix is not None:
            # Recompute the tolerance caches from the stored rows.  The
            # per-row norm reduction is element-independent, so the values
            # are bit-identical to the ones computed at append time.
            base = _REL_TOL * (np.linalg.norm(self._matrix, axis=1) + 1.0)
            self._tol_base = base
            self._tol_signed = np.where(self._strict, base, -base)

    # -- packed-state maintenance ---------------------------------------------

    def _workspace(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A reusable scratch array of ``shape``/``dtype`` (contents stale)."""
        size = 1
        for extent in shape:
            size *= extent
        buffer = self._ws.get(name)
        if buffer is None or buffer.size < size or buffer.dtype != dtype:
            buffer = np.empty(max(size, 1), dtype=dtype)
            self._ws[name] = buffer
        return buffer[:size].reshape(shape)

    def _decide_rows(self, products, tolerances):
        """Vectorized :func:`_decide` over the (direction-folded) rows."""
        rows = self._rows
        return np.where(
            self._strict[:rows], products > tolerances, products >= -tolerances
        )

    @staticmethod
    def _reduce_spans(satisfied, starts, stops):
        """Per-span conjunction of ``satisfied`` along its last axis.

        Counts unsatisfied rows through an exclusive prefix sum, so the
        [start, stop) gather skips tombstoned gaps between spans without
        touching them — faster than ``np.logical_and.reduceat`` and
        immune to dead-row garbage.
        """
        length = satisfied.shape[-1]
        prefix = np.zeros(satisfied.shape[:-1] + (length + 1,), dtype=np.int32)
        np.cumsum(~satisfied, axis=-1, out=prefix[..., 1:])
        return (prefix[..., stops] - prefix[..., starts]) == 0

    @staticmethod
    def _block_span_range(starts, stops, row_lo, row_hi):
        """Index range [j0, j1) of spans overlapping rows [row_lo, row_hi).

        ``starts`` is sorted and spans are disjoint, so ``stops`` is
        sorted too — both bounds come from one binary search each.
        """
        j0 = int(np.searchsorted(stops, row_lo, side="right"))
        j1 = int(np.searchsorted(starts, row_hi, side="left"))
        return j0, j1

    def _match_single_streaming(self, u, starts, stops) -> np.ndarray:
        """Chunk-streamed equivalent of the dense single-publication path.

        Each span's unsatisfied-row count is accumulated block by block;
        the per-row products and decisions are computed by exactly the
        same vectorized operations as the dense path (a row's dot product
        reduces only over the ciphertext width, so row-chunking cannot
        change its result), and the span conjunction is integer counting
        — the final decisions are bit-identical to the in-RAM backend.
        """
        scale = float(np.linalg.norm(u)) + 1.0
        unsat = np.zeros(starts.size, dtype=np.int64)
        for block in self._chunks.blocks():
            j0, j1 = self._block_span_range(starts, stops, block.start, block.stop)
            if j0 >= j1:
                continue
            products = np.ascontiguousarray(block.matrix) @ u
            tolerances = scale * np.ascontiguousarray(block.tol_base)
            satisfied = np.where(
                block.strict, products > tolerances, products >= -tolerances
            )
            length = satisfied.size
            prefix = np.zeros(length + 1, dtype=np.int64)
            np.cumsum(~satisfied, out=prefix[1:])
            lo = np.clip(starts[j0:j1] - block.start, 0, length)
            hi = np.clip(stops[j0:j1] - block.start, 0, length)
            unsat[j0:j1] += prefix[hi] - prefix[lo]
        return unsat == 0

    def _match_batch_streaming(self, batch, starts, stops) -> np.ndarray:
        """Chunk-streamed :func:`match_packed`: one block at a time.

        Runs the identical per-block operation sequence as the dense
        kernel (matmul → sign-folded threshold compare → unsatisfied-row
        prefix sums) and accumulates per-span unsatisfied counts across
        blocks; integer accumulation makes the conjunction exact, so the
        result is bit-identical to the one-shot dense kernel while only
        ever touching one resident chunk of rows.
        """
        count = batch.shape[0]
        scales = np.linalg.norm(batch, axis=1)
        scales += 1.0
        unsat = np.zeros((count, starts.size), dtype=np.int64)
        width = batch.shape[1]
        for block in self._chunks.blocks():
            j0, j1 = self._block_span_range(starts, stops, block.start, block.stop)
            if j0 >= j1:
                continue
            rows = block.stop - block.start
            matrix = self._workspace("stream_matrix", (rows, width), np.float64)
            matrix[:] = block.matrix
            tol_signed = self._workspace("stream_tol", (rows,), np.float64)
            tol_signed[:] = block.tol_signed
            products = self._workspace("products", (count, rows), np.float64)
            np.matmul(batch, matrix.T, out=products)
            thresholds = self._workspace("thresholds", (count, rows), np.float64)
            np.multiply(scales[:, None], tol_signed[None, :], out=thresholds)
            satisfied = self._workspace("satisfied", (count, rows), np.bool_)
            np.greater(products, thresholds, out=satisfied)
            boundary = self._workspace("boundary", (count, rows), np.bool_)
            np.equal(products, thresholds, out=boundary)
            np.logical_and(boundary, ~block.strict[None, :], out=boundary)
            np.logical_or(satisfied, boundary, out=satisfied)
            np.logical_not(satisfied, out=boundary)
            prefix = self._workspace("prefix", (count, rows + 1), np.int32)
            prefix[:, 0] = 0
            np.cumsum(boundary, axis=1, out=prefix[:, 1:])
            lo = np.clip(starts[j0:j1] - block.start, 0, rows)
            hi = np.clip(stops[j0:j1] - block.start, 0, rows)
            unsat[:, j0:j1] += prefix[:, hi] - prefix[:, lo]
        return unsat == 0

    def _append_rows(self, sub_id: int, subscription: EncryptedSubscription) -> None:
        predicates = subscription.predicates
        count = len(predicates)
        if count == 0:
            self._spans[sub_id] = (self._rows, self._rows)
            return
        width = predicates[0].vector.shape[0]
        if self._chunks is not None:
            block = np.empty((count, width))
            strict = np.empty(count, dtype=bool)
            for offset, predicate in enumerate(predicates):
                if _OP_SIGN[predicate.op_code] < 0.0:
                    np.negative(predicate.vector, out=block[offset])
                else:
                    block[offset] = predicate.vector
                strict[offset] = _OP_STRICT[predicate.op_code]
            # Computed on the staging block, but per-row norms reduce
            # element-independently — bit-identical to dense append.
            base = _REL_TOL * (np.linalg.norm(block, axis=1) + 1.0)
            tol_signed = np.where(strict, base, -base)
            start, stop = self._chunks.append(block, strict, base, tol_signed)
            self._rows = stop
            self._spans[sub_id] = (start, stop)
            self.rows_appended += count
            return
        self._ensure_capacity(count, width)
        start = self._rows
        stop = start + count
        block = self._matrix[start:stop]
        for offset, predicate in enumerate(predicates):
            # Folding the ±1 comparison direction into the row is exact:
            # IEEE negation commutes with sums and products bit-for-bit.
            if _OP_SIGN[predicate.op_code] < 0.0:
                np.negative(predicate.vector, out=block[offset])
            else:
                block[offset] = predicate.vector
            self._strict[start + offset] = _OP_STRICT[predicate.op_code]
        base = _REL_TOL * (np.linalg.norm(block, axis=1) + 1.0)
        self._tol_base[start:stop] = base
        self._tol_signed[start:stop] = np.where(self._strict[start:stop], base, -base)
        self._alive[start:stop] = True
        self._rows = stop
        self._spans[sub_id] = (start, stop)
        self.rows_appended += count

    def _ensure_capacity(self, extra: int, width: int) -> None:
        if self._matrix is None:
            capacity = max(_MIN_CAPACITY, 2 * extra)
            self._matrix = np.empty((capacity, width))
            self._strict = np.zeros(capacity, dtype=bool)
            self._tol_base = np.empty(capacity)
            self._tol_signed = np.empty(capacity)
            self._alive = np.zeros(capacity, dtype=bool)
            return
        if width != self._matrix.shape[1]:
            raise ValueError(
                f"ciphertext width {width} does not match stored width "
                f"{self._matrix.shape[1]}"
            )
        needed = self._rows + extra
        capacity = self._matrix.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.empty((capacity, width))
        grown[: self._rows] = self._matrix[: self._rows]
        self._matrix = grown
        for name in ("_tol_base", "_tol_signed"):
            buffer = np.empty(capacity)
            buffer[: self._rows] = getattr(self, name)[: self._rows]
            setattr(self, name, buffer)
        for name in ("_strict", "_alive"):
            buffer = np.zeros(capacity, dtype=bool)
            buffer[: self._rows] = getattr(self, name)[: self._rows]
            setattr(self, name, buffer)

    def _tombstone(self, sub_id: int) -> None:
        start, stop = self._spans.pop(sub_id)
        if stop > start:
            if self._chunks is not None:
                self._chunks.mark_dead(start, stop)
            else:
                self._alive[start:stop] = False
            self._dead_rows += stop - start

    def _maybe_compact(self) -> None:
        # Compact once dead/(dead+live) exceeds the configured ratio (and
        # a fixed floor).  The default ratio of 0.5 solves to
        # ``dead > max(live, 64)`` — exactly the seed's hardcoded trigger.
        ratio = self._store_config.compact_dead_ratio
        if ratio >= 1.0:
            return
        live = self._rows - self._dead_rows
        threshold = max(live * ratio / (1.0 - ratio), _COMPACT_MIN_DEAD)
        if self._dead_rows > threshold:
            self._compact()

    def _compact(self) -> None:
        """Drop tombstoned rows, preserving the relative order of live ones.

        A subscription's rows are tombstoned all-or-nothing, so remapping
        the span boundaries through the live-row prefix sums keeps every
        span contiguous.
        """
        if self._chunks is not None:
            offsets = self._chunks.compact()
            self._spans = {
                sub_id: (int(offsets[start]), int(offsets[stop]))
                for sub_id, (start, stop) in self._spans.items()
            }
            self._rows = self._chunks.rows
            self._dead_rows = 0
            self._index = None
            self._generation += 1
            self.compaction_count += 1
            return
        rows = self._rows
        alive = self._alive[:rows]
        keep = np.nonzero(alive)[0]
        offsets = np.zeros(rows + 1, dtype=np.int64)
        np.cumsum(alive, out=offsets[1:])
        self._matrix[: keep.size] = self._matrix[keep]
        self._strict[: keep.size] = self._strict[keep]
        self._tol_base[: keep.size] = self._tol_base[keep]
        self._tol_signed[: keep.size] = self._tol_signed[keep]
        self._alive[: keep.size] = True
        self._alive[keep.size : rows] = False
        self._spans = {
            sub_id: (int(offsets[start]), int(offsets[stop]))
            for sub_id, (start, stop) in self._spans.items()
        }
        self._rows = int(keep.size)
        self._dead_rows = 0
        self._index = None
        # Row content moved: previously exported deltas are invalid.
        self._generation += 1
        self.compaction_count += 1

    def _span_index(self):
        """Cached reduction index: (ids, positions, starts, stops).

        ``ids`` lists stored subscription ids in dict (insertion) order;
        ``starts``/``stops`` hold the row offsets of all *non-empty* spans,
        sorted by start, ready for the prefix-sum span reduction;
        ``positions[j]`` is the index into ``ids`` of the span whose
        reduction lands in slot ``j``.  Empty spans are left out — their
        subscriptions match vacuously.  Rebuilding is O(#subscriptions),
        done lazily after a structural change; match itself is already
        Ω(#subscriptions).
        """
        if self._index is None:
            ids: List[int] = []
            span_starts: List[int] = []
            span_stops: List[int] = []
            span_positions: List[int] = []
            for position, sub_id in enumerate(self._subs):
                ids.append(sub_id)
                start, stop = self._spans[sub_id]
                if stop > start:
                    span_starts.append(start)
                    span_stops.append(stop)
                    span_positions.append(position)
            starts = np.asarray(span_starts, dtype=np.int64)
            stops = np.asarray(span_stops, dtype=np.int64)
            positions = np.asarray(span_positions, dtype=np.int64)
            order = np.argsort(starts, kind="stable")
            self._index = (ids, positions[order], starts[order], stops[order])
        return self._index
