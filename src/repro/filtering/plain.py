"""Plaintext filtering libraries.

Two implementations are provided:

* :class:`BruteForceLibrary` — evaluates every stored subscription against
  every publication, like encrypted filtering must.  O(N·k) per match.
* :class:`CountingIndexLibrary` — the classic counting algorithm (Yan &
  Garcia-Molina): per-attribute sorted indices of predicate constants let a
  publication discover all satisfied predicates in O(log N + hits); a
  subscription matches when its satisfied-predicate count equals its
  predicate count.  This is the "plain-text filtering may leverage the
  workload" baseline the paper contrasts with ASPE.
"""

from __future__ import annotations

import bisect
import sys
from typing import Dict, List, Sequence, Tuple

from .base import FilteringLibrary
from .predicates import Op, Predicate, PredicateSet

__all__ = ["BruteForceLibrary", "CountingIndexLibrary"]

# Approximate serialized footprint of one plaintext predicate: attribute
# index + op tag + 8-byte constant + object overhead.
_PREDICATE_BYTES = 48


class BruteForceLibrary(FilteringLibrary):
    """Match by evaluating every stored subscription (no index)."""

    def __init__(self) -> None:
        self._subs: Dict[int, PredicateSet] = {}

    def store(self, sub_id: int, filter_data: PredicateSet) -> None:
        if not isinstance(filter_data, PredicateSet):
            raise TypeError(f"expected PredicateSet, got {type(filter_data).__name__}")
        self._subs[sub_id] = filter_data

    def remove(self, sub_id: int) -> None:
        del self._subs[sub_id]

    def match(self, publication_data: Sequence[float]) -> List[int]:
        return [
            sub_id
            for sub_id, predicate_set in self._subs.items()
            if predicate_set.matches(publication_data)
        ]

    def subscription_count(self) -> int:
        return len(self._subs)

    def state_size_bytes(self) -> int:
        return sum(_PREDICATE_BYTES * len(ps) + 32 for ps in self._subs.values())

    def export_state(self) -> Dict[int, PredicateSet]:
        return dict(self._subs)

    def import_state(self, state: Dict[int, PredicateSet]) -> None:
        self._subs = dict(state)


class _AttributeIndex:
    """Predicates on one attribute, keyed by constant for range scans.

    Entries are stored as parallel sorted arrays per operator class so a
    publication value ``v`` finds all satisfied predicates with two
    bisections per class:

    * ``<``/``<=`` predicates are satisfied when ``constant > v`` (or >=),
    * ``>``/``>=`` when ``constant < v`` (or <=),
    * ``=`` when ``constant == v``.

    Removal is *lazy*: a discarded subscription is tombstoned in a dead
    set and its entries filtered out of scan hits, so a remove is O(1)
    instead of rebuilding every op list.  Dead entries are purged when
    they outnumber the live ones (amortized O(1) per removal) or when a
    tombstoned subscription id is re-added (the stale entries would
    shadow the fresh ones otherwise).
    """

    def __init__(self) -> None:
        # op -> sorted list of (constant, sub_id, predicate_index)
        self._by_op: Dict[Op, List[Tuple[float, int, int]]] = {op: [] for op in Op}
        self._dirty = False
        #: Tombstoned subscription ids and how many entries they left behind.
        self._dead: set = set()
        self._dead_entries = 0
        self._total_entries = 0
        #: Purges performed (regression instrumentation for churn tests).
        self.purge_count = 0

    def add(self, constant: float, sub_id: int, pred_index: int, op: Op) -> None:
        if sub_id in self._dead:
            # Stale tombstoned entries of this id are still in the lists;
            # purge now so they cannot shadow the fresh ones.
            self._purge()
        self._by_op[op].append((constant, sub_id, pred_index))
        self._total_entries += 1
        self._dirty = True

    def discard_subscription(self, sub_id: int, entry_count: int) -> None:
        """Tombstone ``sub_id``, which owns ``entry_count`` entries here."""
        if entry_count <= 0:
            return
        self._dead.add(sub_id)
        self._dead_entries += entry_count
        if self._dead_entries > self._total_entries - self._dead_entries:
            self._purge()

    def _purge(self) -> None:
        for op, entries in self._by_op.items():
            self._by_op[op] = [e for e in entries if e[1] not in self._dead]
        self._total_entries -= self._dead_entries
        self._dead.clear()
        self._dead_entries = 0
        self.purge_count += 1

    def _ensure_sorted(self) -> None:
        if self._dirty:
            for entries in self._by_op.values():
                entries.sort(key=lambda e: (e[0], e[1], e[2]))
            self._dirty = False

    def satisfied(self, value: float) -> List[Tuple[int, int]]:
        """(sub_id, predicate_index) of all live predicates satisfied by value."""
        self._ensure_sorted()
        hits: List[Tuple[int, int]] = []
        dead = self._dead
        key = (value, sys.maxsize, sys.maxsize)

        lt = self._by_op[Op.LT]
        # value < constant  ⇒  constants strictly greater than value.
        for constant, sub_id, idx in lt[bisect.bisect_right(lt, key):]:
            if sub_id not in dead:
                hits.append((sub_id, idx))
        le = self._by_op[Op.LE]
        for constant, sub_id, idx in le[bisect.bisect_left(le, (value, -1, -1)):]:
            if sub_id not in dead:
                hits.append((sub_id, idx))
        gt = self._by_op[Op.GT]
        for constant, sub_id, idx in gt[: bisect.bisect_left(gt, (value, -1, -1))]:
            if sub_id not in dead:
                hits.append((sub_id, idx))
        ge = self._by_op[Op.GE]
        for constant, sub_id, idx in ge[: bisect.bisect_right(ge, key)]:
            if sub_id not in dead:
                hits.append((sub_id, idx))
        eq = self._by_op[Op.EQ]
        lo = bisect.bisect_left(eq, (value, -1, -1))
        hi = bisect.bisect_right(eq, key)
        for constant, sub_id, idx in eq[lo:hi]:
            if sub_id not in dead:
                hits.append((sub_id, idx))
        return hits

    def entry_count(self) -> int:
        """Live entries (tombstoned ones are already semantically gone)."""
        return self._total_entries - self._dead_entries


class CountingIndexLibrary(FilteringLibrary):
    """Counting-algorithm matcher with per-attribute indices."""

    def __init__(self) -> None:
        self._subs: Dict[int, PredicateSet] = {}
        self._indices: Dict[int, _AttributeIndex] = {}

    def store(self, sub_id: int, filter_data: PredicateSet) -> None:
        if not isinstance(filter_data, PredicateSet):
            raise TypeError(f"expected PredicateSet, got {type(filter_data).__name__}")
        if sub_id in self._subs:
            self.remove(sub_id)
        self._subs[sub_id] = filter_data
        for pred_index, predicate in enumerate(filter_data):
            index = self._indices.setdefault(predicate.attribute, _AttributeIndex())
            index.add(predicate.constant, sub_id, pred_index, predicate.op)

    def remove(self, sub_id: int) -> None:
        predicate_set = self._subs.pop(sub_id)  # KeyError if unknown
        per_attribute: Dict[int, int] = {}
        for predicate in predicate_set:
            per_attribute[predicate.attribute] = (
                per_attribute.get(predicate.attribute, 0) + 1
            )
        for attribute, count in per_attribute.items():
            index = self._indices.get(attribute)
            if index is not None:
                index.discard_subscription(sub_id, count)

    def match(self, publication_data: Sequence[float]) -> List[int]:
        counts: Dict[int, int] = {}
        for attribute, index in self._indices.items():
            if attribute >= len(publication_data):
                continue
            for sub_id, _pred_index in index.satisfied(publication_data[attribute]):
                counts[sub_id] = counts.get(sub_id, 0) + 1
        return [
            sub_id
            for sub_id, count in counts.items()
            if count == len(self._subs[sub_id])
        ]

    def subscription_count(self) -> int:
        return len(self._subs)

    def state_size_bytes(self) -> int:
        return sum(_PREDICATE_BYTES * len(ps) + 32 for ps in self._subs.values())

    def export_state(self) -> Dict[int, PredicateSet]:
        return dict(self._subs)

    def import_state(self, state: Dict[int, PredicateSet]) -> None:
        self._subs = {}
        self._indices = {}
        for sub_id, predicate_set in state.items():
            self.store(sub_id, predicate_set)
