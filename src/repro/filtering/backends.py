"""Matching backends used by M-operator slices in simulations.

Two interchangeable backends implement the same storage/matching surface:

* :class:`ExactBackend` wraps any real :class:`~repro.filtering.base.
  FilteringLibrary` (plaintext or ASPE) and computes true match sets.
  Used in unit/integration tests, examples and small-scale simulations.
* :class:`SampledBackend` reproduces the *statistics* of encrypted
  filtering without touching ciphertexts: the number of matches of a
  publication in a slice holding ``n`` subscriptions is drawn from
  Binomial(n, matching_rate), the exact distribution of independent
  per-subscription matches the synthetic workload is built to have.
  At the paper's scale (42 million encrypted match operations per second)
  evaluating real ciphertexts in Python would make cluster-length
  simulations intractable; the sampled backend preserves exactly the
  load-relevant quantities — stored-subscription counts (CPU cost),
  match-list sizes and notification counts — which is what the elasticity
  experiments measure.  DESIGN.md §2 documents this substitution.

Both report the number of stored subscriptions (drives the CPU cost
charged per publication) and expose export/import for slice migration.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from .base import FilteringLibrary

__all__ = ["MatchResult", "MatchingBackend", "ExactBackend", "SampledBackend", "sample_binomial"]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one publication inside one M slice.

    ``ids`` is the concrete list of matching subscription ids when the
    backend computes one (exact mode) and ``None`` in sampled mode, where
    only the count is statistically meaningful.
    """

    count: int
    ids: Optional[List[int]] = None


class MatchingBackend(ABC):
    """Storage + matching surface used by M-operator slices."""

    @abstractmethod
    def store(self, sub_id: int, payload: Any) -> None:
        """Store subscription ``sub_id`` with its (possibly encrypted) filter."""

    @abstractmethod
    def remove(self, sub_id: int) -> None:
        """Forget subscription ``sub_id``."""

    @abstractmethod
    def match(self, pub_id: int, payload: Any) -> MatchResult:
        """Match one publication against the stored subscriptions."""

    def match_batch(self, pub_ids: Sequence[int], payloads: Sequence[Any]) -> List[MatchResult]:
        """Match several publications at once, one result per publication.

        Defined to equal ``[self.match(i, p) for i, p in zip(...)]`` — the
        default delegates to :meth:`match` so every backend (including the
        sampled one, whose per-publication RNG draws must stay in sequence
        order) is batch-callable; :class:`ExactBackend` overrides it with
        the wrapped library's vectorized batch kernel.
        """
        return [self.match(pub_id, payload) for pub_id, payload in zip(pub_ids, payloads)]

    @abstractmethod
    def subscription_count(self) -> int:
        """Number of stored subscriptions (drives the matching CPU cost)."""

    @abstractmethod
    def export_state(self) -> Any:
        """Serializable snapshot of stored subscriptions (for migration)."""

    @abstractmethod
    def import_state(self, state: Any) -> None:
        """Replace stored subscriptions with ``state`` (for migration)."""


class ExactBackend(MatchingBackend):
    """Real matching through a wrapped filtering library."""

    def __init__(self, library: FilteringLibrary):
        self.library = library

    def store(self, sub_id: int, payload: Any) -> None:
        self.library.store(sub_id, payload)

    def remove(self, sub_id: int) -> None:
        self.library.remove(sub_id)

    def match(self, pub_id: int, payload: Any) -> MatchResult:
        ids = self.library.match(payload)
        return MatchResult(count=len(ids), ids=ids)

    def match_batch(self, pub_ids: Sequence[int], payloads: Sequence[Any]) -> List[MatchResult]:
        return [
            MatchResult(count=len(ids), ids=ids)
            for ids in self.library.match_batch(payloads)
        ]

    def subscription_count(self) -> int:
        return self.library.subscription_count()

    def export_state(self) -> Any:
        return self.library.export_state()

    def import_state(self, state: Any) -> None:
        self.library.import_state(state)

    def parallel_library(self) -> Optional[FilteringLibrary]:
        """The wrapped library, if it supports parallel packed dispatch.

        The parallel matching executors (:mod:`repro.parallel`) need a
        library exposing the packed-matrix protocol (``packed_view``).
        Libraries without it (brute force, counting index) simply keep
        matching inline — capability, not configuration, gates the
        offload.
        """
        if hasattr(self.library, "packed_view"):
            return self.library
        return None


def sample_binomial(rng: random.Random, n: int, p: float) -> int:
    """Draw from Binomial(n, p) — exact for small means, normal approx above.

    The normal approximation is used when ``n·p·(1−p) > 25``, where its
    error is far below the run-to-run variance of the experiments.
    """
    if n <= 0 or p <= 0.0:
        return 0
    if p >= 1.0:
        return n
    variance = n * p * (1.0 - p)
    if variance > 25.0:
        draw = int(round(rng.gauss(n * p, math.sqrt(variance))))
        return min(max(draw, 0), n)
    # Exact inversion: walk the CDF (mean is small here, so this is cheap).
    u = rng.random()
    probability = (1.0 - p) ** n
    cumulative = probability
    k = 0
    while u > cumulative and k < n:
        probability *= (n - k) / (k + 1) * (p / (1.0 - p))
        cumulative += probability
        k += 1
    return k


class SampledBackend(MatchingBackend):
    """Statistically faithful stand-in for encrypted matching at scale."""

    def __init__(self, matching_rate: float, seed: int = 0):
        if not 0.0 <= matching_rate <= 1.0:
            raise ValueError(f"matching rate must be in [0, 1], got {matching_rate}")
        self.matching_rate = matching_rate
        self._rng = random.Random(seed)
        self._subs: Dict[int, Any] = {}

    def store(self, sub_id: int, payload: Any) -> None:
        self._subs[sub_id] = payload

    def remove(self, sub_id: int) -> None:
        del self._subs[sub_id]

    def match(self, pub_id: int, payload: Any) -> MatchResult:
        count = sample_binomial(self._rng, len(self._subs), self.matching_rate)
        return MatchResult(count=count, ids=None)

    def subscription_count(self) -> int:
        return len(self._subs)

    def export_state(self) -> Any:
        return dict(self._subs)

    def import_state(self, state: Any) -> None:
        self._subs = dict(state)
