"""Content-based filtering: plaintext predicates, indices, and ASPE.

* :mod:`repro.filtering.predicates` — the plaintext model (Op, Predicate,
  PredicateSet).
* :mod:`repro.filtering.plain` — brute-force and counting-index libraries.
* :mod:`repro.filtering.aspe` — real ASPE encrypted filtering.
* :mod:`repro.filtering.backends` — exact/sampled matching backends used
  by simulated M-operator slices.
* :mod:`repro.filtering.store` — chunked/mmap packed-row backing stores
  and key-range shard split/merge (DESIGN.md §8).
* :mod:`repro.filtering.cost` — the calibrated CPU/size cost model.
"""

from .predicates import Op, Predicate, PredicateSet
from .base import FilteringLibrary
from .plain import BruteForceLibrary, CountingIndexLibrary
from .aspe import (
    AspeCipher,
    AspeKey,
    AspeLibrary,
    EncryptedPredicate,
    EncryptedPublication,
    EncryptedSubscription,
    PackedMatrixView,
    match_encrypted,
    match_packed,
)
from .aspe_split import AspeSplitCipher, AspeSplitKey
from .store import (
    STORE_BACKENDS,
    AspeShard,
    ChunkedMatrixStore,
    ShardOpResult,
    ShardedAspeLibrary,
    StoreConfig,
)
from .backends import (
    ExactBackend,
    MatchResult,
    MatchingBackend,
    SampledBackend,
    sample_binomial,
)
from .cost import CostModel

__all__ = [
    "AspeCipher",
    "AspeKey",
    "AspeLibrary",
    "AspeShard",
    "AspeSplitCipher",
    "AspeSplitKey",
    "ChunkedMatrixStore",
    "STORE_BACKENDS",
    "ShardOpResult",
    "ShardedAspeLibrary",
    "StoreConfig",
    "BruteForceLibrary",
    "CostModel",
    "CountingIndexLibrary",
    "EncryptedPredicate",
    "EncryptedPublication",
    "EncryptedSubscription",
    "ExactBackend",
    "FilteringLibrary",
    "MatchResult",
    "MatchingBackend",
    "Op",
    "PackedMatrixView",
    "Predicate",
    "PredicateSet",
    "SampledBackend",
    "match_encrypted",
    "match_packed",
    "sample_binomial",
]
