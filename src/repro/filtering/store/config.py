"""Configuration of the packed-matrix backing store.

One :class:`StoreConfig` selects how an :class:`~repro.filtering.AspeLibrary`
keeps its packed predicate rows: fully resident in RAM (``dense``, the
seed behaviour), row-chunked in RAM (``chunked``), or row-chunked and
persisted through ``numpy.memmap`` with an LRU-bounded resident set
(``mmap``) so one M-slice can serve subscription partitions far larger
than its memory budget.

Defaults come from the ``REPRO_STORE_*`` environment variables so an
existing deployment or test run flips backends without code changes —
the same convention as the ``REPRO_MATCH_*`` parallel-matching knobs.
"""

from __future__ import annotations

import os

from dataclasses import dataclass
from typing import Optional

from ...config import env_float, env_int, env_str

__all__ = ["STORE_BACKENDS", "StoreConfig"]

#: Recognised packed-row store backends.
STORE_BACKENDS = ("dense", "chunked", "mmap")


@dataclass(frozen=True)
class StoreConfig:
    """Validated knobs of the packed-row backing store.

    ``backend``
        ``dense`` keeps the seed's amortized-doubling in-RAM buffers;
        ``chunked`` splits rows into fixed-size chunks held in RAM (the
        shard transfer format, no eviction); ``mmap`` persists each chunk
        through ``numpy.memmap`` and keeps only an LRU-pinned resident
        set within ``memory_budget_mb``.
    ``chunk_rows``
        Rows per chunk.  At ciphertext width ``n`` a chunk occupies
        ``chunk_rows × (n + 2) × 8`` bytes of row data (matrix columns
        plus the two tolerance columns).
    ``memory_budget_mb``
        Resident-set budget for ``mmap`` chunk data, in MiB.  ``0``
        disables eviction.  The hottest chunk is never evicted, so the
        effective floor is one chunk.
    ``compact_dead_ratio``
        Compact once ``dead / (dead + live)`` exceeds this ratio (and
        dead rows exceed a fixed floor).  The default ``0.5`` reproduces
        the seed's hardcoded "dead rows outnumber live ones" trigger;
        ``1.0`` disables compaction entirely.
    ``spill_dir``
        Parent directory for ``mmap`` chunk files (default: the system
        temporary directory).  Each store creates — and removes on
        garbage collection — its own subdirectory.
    """

    backend: str = "dense"
    chunk_rows: int = 65536
    memory_budget_mb: float = 0.0
    compact_dead_ratio: float = 0.5
    spill_dir: Optional[str] = None

    def __post_init__(self):
        if self.backend not in STORE_BACKENDS:
            raise ValueError(
                f"store_backend must be one of {STORE_BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.chunk_rows < 1:
            raise ValueError(
                f"store_chunk_rows must be >= 1, got {self.chunk_rows}"
            )
        if self.memory_budget_mb < 0:
            raise ValueError(
                f"store_memory_budget_mb must be >= 0 (0 disables eviction), "
                f"got {self.memory_budget_mb}"
            )
        if not 0.0 < self.compact_dead_ratio <= 1.0:
            raise ValueError(
                f"store_compact_dead_ratio must be in (0, 1] (1 disables "
                f"compaction), got {self.compact_dead_ratio}"
            )

    @property
    def memory_budget_bytes(self) -> int:
        return int(self.memory_budget_mb * 1024 * 1024)

    @classmethod
    def from_env(cls) -> "StoreConfig":
        """Build from ``REPRO_STORE_*`` (unset variables keep defaults)."""
        return cls(
            backend=env_str("REPRO_STORE_BACKEND", "dense"),
            chunk_rows=env_int("REPRO_STORE_CHUNK_ROWS", 65536),
            memory_budget_mb=env_float("REPRO_STORE_MEMORY_BUDGET_MB", 0.0),
            compact_dead_ratio=env_float("REPRO_STORE_COMPACT_DEAD_RATIO", 0.5),
            spill_dir=os.environ.get("REPRO_STORE_SPILL_DIR") or None,
        )
