"""Chunked, optionally memory-mapped backing store for packed predicate rows.

The packed predicate matrix (PR 1) is split into fixed-size *row chunks*.
Each chunk keeps its float64 row data — the ``width`` ciphertext columns
plus the two derived tolerance columns — in one ``(capacity, width + 2)``
array, either a plain in-RAM array (``chunked`` backend) or a
``numpy.memmap`` over a per-store spill file (``mmap`` backend).  The
per-row ``strict`` and ``alive`` flags always stay in RAM (2 bytes/row,
~3% of the row data), so tombstoning never faults a chunk in.

Under the ``mmap`` backend an LRU-ordered resident set bounds how much
chunk data is mapped at once: faulting a chunk in past the configured
byte budget flushes and *drops the Python reference to* the
least-recently-used mapping.  Dropping the reference is the whole
eviction protocol — any caller still holding a row view keeps the old
mapping alive through ordinary refcounting (no use-after-free, no torn
reads), the OS writes the pages back lazily, and the next fault simply
remaps the same file.  Matching streams chunk by chunk through
:meth:`ChunkedMatrixStore.blocks`, so the working set stays within the
budget regardless of total subscription count.

Chunks are also the shard transfer format: :meth:`adopt` moves whole
chunk objects (and renames their spill files — a rename keeps open
mappings valid, the inode is unchanged) into another store without
rewriting a single row, and :meth:`split_at` hands off every chunk past
a row boundary the same way, copying only the rows of the one chunk the
boundary cuts through.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref

from collections import OrderedDict
from typing import Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

from .config import StoreConfig

__all__ = ["ChunkedMatrixStore", "RowBlock"]


class RowBlock(NamedTuple):
    """One contiguous run of packed rows, as views into a chunk."""

    start: int
    stop: int
    matrix: np.ndarray
    strict: np.ndarray
    tol_base: np.ndarray
    tol_signed: np.ndarray
    alive: np.ndarray


class _Chunk:
    """One fixed-capacity run of rows (data possibly evicted to its file)."""

    __slots__ = ("capacity", "used", "strict", "alive", "path", "data")

    def __init__(self, capacity: int, path: Optional[str], data) -> None:
        self.capacity = capacity
        self.used = 0
        self.strict = np.zeros(capacity, dtype=bool)
        self.alive = np.zeros(capacity, dtype=bool)
        self.path = path
        self.data = data


class ChunkedMatrixStore:
    """Row-chunked packed-matrix storage with an LRU-bounded resident set.

    Row addressing is positional and global: row ``i`` lives in the chunk
    whose cumulative ``used`` range covers ``i``.  Interior chunks may be
    partially filled after a split or adoption; appends only ever extend
    the last chunk.  The column layout of each chunk's data array is
    ``[:width]`` = direction-folded query rows, ``[width]`` = tolerance
    base, ``[width + 1]`` = sign-folded tolerance.
    """

    def __init__(self, config: StoreConfig) -> None:
        self.config = config
        self.width: Optional[int] = None
        self._chunks: List[_Chunk] = []
        self._rows = 0
        self._dead = 0
        #: Cached cumulative chunk starts (len(chunks) + 1 entries).
        self._offsets: Optional[np.ndarray] = None
        #: Resident chunks in least-recently-used-first order.
        self._lru: "OrderedDict[_Chunk, None]" = OrderedDict()
        self._resident_bytes = 0
        self.resident_peak_bytes = 0
        self.fault_count = 0
        self.eviction_count = 0
        self._dir: Optional[str] = None
        self._finalizer = None
        self._chunk_seq = 0
        self._telemetry = None
        self._label = "aspe"

    # -- observability --------------------------------------------------------

    def bind_telemetry(self, telemetry, label: str = "aspe") -> None:
        """Record faults/evictions/residency into a telemetry bundle."""
        self._telemetry = telemetry
        self._label = label
        self._update_gauges()

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def dead_rows(self) -> int:
        return self._dead

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def resident_chunks(self) -> int:
        return len(self._lru)

    def stats(self) -> dict:
        return {
            "backend": self.config.backend,
            "chunk_rows": self.config.chunk_rows,
            "chunks": len(self._chunks),
            "rows": self._rows,
            "dead_rows": self._dead,
            "resident_chunks": len(self._lru),
            "resident_bytes": self._resident_bytes,
            "resident_peak_bytes": self.resident_peak_bytes,
            "faults": self.fault_count,
            "evictions": self.eviction_count,
        }

    # -- residency ------------------------------------------------------------

    def _ensure_dir(self) -> str:
        if self._dir is None:
            self._dir = tempfile.mkdtemp(
                prefix="aspe-store-", dir=self.config.spill_dir
            )
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, self._dir, True
            )
        return self._dir

    def _new_chunk(self, capacity: int) -> _Chunk:
        shape = (capacity, self.width + 2)
        if self.config.backend == "mmap":
            path = os.path.join(
                self._ensure_dir(), f"chunk-{self._chunk_seq:06d}.f64"
            )
            self._chunk_seq += 1
            data = np.memmap(path, dtype=np.float64, mode="w+", shape=shape)
        else:
            path = None
            data = np.zeros(shape, dtype=np.float64)
        chunk = _Chunk(capacity, path, data)
        self._chunks.append(chunk)
        self._offsets = None
        self._track_resident(chunk)
        return chunk

    def _track_resident(self, chunk: _Chunk) -> None:
        self._lru[chunk] = None
        self._lru.move_to_end(chunk)
        self._resident_bytes += chunk.data.nbytes
        if self._resident_bytes > self.resident_peak_bytes:
            self.resident_peak_bytes = self._resident_bytes
        self._update_gauges()

    def _data(self, chunk: _Chunk) -> np.ndarray:
        """The chunk's row data, faulting it back in if evicted."""
        data = chunk.data
        if data is None:
            data = np.memmap(
                chunk.path,
                dtype=np.float64,
                mode="r+",
                shape=(chunk.capacity, self.width + 2),
            )
            chunk.data = data
            self.fault_count += 1
            telemetry = self._telemetry
            if telemetry is not None and telemetry.store_chunk_faults is not None:
                telemetry.store_chunk_faults.labels(store=self._label).inc()
            self._track_resident(chunk)
        elif chunk in self._lru:
            self._lru.move_to_end(chunk)
        self._evict(exclude=chunk)
        return data

    def _evict(self, exclude: Optional[_Chunk]) -> None:
        budget = self.config.memory_budget_bytes
        if budget <= 0 or self.config.backend != "mmap":
            return
        evicted = 0
        while self._resident_bytes > budget:
            victim = None
            for candidate in self._lru:
                # Never evict the chunk being touched, and never a chunk
                # without a backing file (adopted from a RAM store).
                if candidate is not exclude and candidate.path is not None:
                    victim = candidate
                    break
            if victim is None:
                break
            del self._lru[victim]
            victim.data.flush()
            self._resident_bytes -= victim.data.nbytes
            victim.data = None
            self.eviction_count += 1
            evicted += 1
        if evicted:
            telemetry = self._telemetry
            if telemetry is not None and telemetry.store_chunk_evictions is not None:
                telemetry.store_chunk_evictions.labels(store=self._label).inc(evicted)
            self._update_gauges()

    def _update_gauges(self) -> None:
        telemetry = self._telemetry
        if telemetry is None or telemetry.store_resident_chunks is None:
            return
        telemetry.store_resident_chunks.labels(store=self._label).set(
            len(self._lru)
        )
        telemetry.store_resident_bytes.labels(store=self._label).set(
            self._resident_bytes
        )

    def _forget(self, chunk: _Chunk) -> None:
        """Drop a chunk from residency accounting (it is leaving the store)."""
        if chunk in self._lru:
            del self._lru[chunk]
        if chunk.data is not None:
            self._resident_bytes -= chunk.data.nbytes
        self._update_gauges()

    def _drop_chunk(self, chunk: _Chunk) -> None:
        self._forget(chunk)
        chunk.data = None
        if chunk.path is not None:
            try:
                os.unlink(chunk.path)
            except OSError:
                pass

    # -- row addressing -------------------------------------------------------

    def _chunk_offsets(self) -> np.ndarray:
        if self._offsets is None:
            offsets = np.zeros(len(self._chunks) + 1, dtype=np.int64)
            for index, chunk in enumerate(self._chunks):
                offsets[index + 1] = offsets[index] + chunk.used
            self._offsets = offsets
        return self._offsets

    # -- mutation -------------------------------------------------------------

    def _check_width(self, width: int) -> None:
        if self.width is None:
            self.width = int(width)
        elif int(width) != self.width:
            raise ValueError(
                f"ciphertext width {width} does not match stored width "
                f"{self.width}"
            )

    def append(
        self,
        matrix: np.ndarray,
        strict: np.ndarray,
        tol_base: np.ndarray,
        tol_signed: np.ndarray,
    ) -> Tuple[int, int]:
        """Append rows (marked alive); returns their [start, stop) span."""
        count = int(matrix.shape[0])
        start = self._rows
        if count == 0:
            return (start, start)
        self._check_width(matrix.shape[1])
        width = self.width
        written = 0
        while written < count:
            chunk = self._chunks[-1] if self._chunks else None
            if chunk is None or chunk.used >= chunk.capacity:
                chunk = self._new_chunk(self.config.chunk_rows)
            take = min(count - written, chunk.capacity - chunk.used)
            data = self._data(chunk)
            lo = chunk.used
            hi = lo + take
            data[lo:hi, :width] = matrix[written : written + take]
            data[lo:hi, width] = tol_base[written : written + take]
            data[lo:hi, width + 1] = tol_signed[written : written + take]
            chunk.strict[lo:hi] = strict[written : written + take]
            chunk.alive[lo:hi] = True
            chunk.used = hi
            written += take
            self._offsets = None
        self._rows += count
        return (start, start + count)

    def mark_dead(self, start: int, stop: int) -> None:
        """Tombstone rows [start, stop) — touches only the in-RAM flags."""
        if stop <= start:
            return
        offsets = self._chunk_offsets()
        index = int(np.searchsorted(offsets, start, side="right")) - 1
        row = start
        while row < stop:
            chunk = self._chunks[index]
            base = int(offsets[index])
            lo = row - base
            hi = min(stop - base, chunk.used)
            chunk.alive[lo:hi] = False
            row = base + hi
            index += 1
        self._dead += stop - start

    def _recount_dead(self) -> None:
        self._dead = self._rows - sum(
            int(chunk.alive[: chunk.used].sum()) for chunk in self._chunks
        )

    def compact(self) -> np.ndarray:
        """Drop tombstoned rows chunk by chunk, preserving live-row order.

        Returns the (old_rows + 1)-entry exclusive alive-prefix-sum: the
        caller remaps span boundary ``b`` to ``offsets[b]`` — the exact
        formula of the dense path, valid here because per-chunk
        compaction keeps the global relative order of live rows.
        """
        old_rows = self._rows
        offsets = np.zeros(old_rows + 1, dtype=np.int64)
        if old_rows:
            alive_all = np.concatenate(
                [chunk.alive[: chunk.used] for chunk in self._chunks]
            )
            np.cumsum(alive_all, out=offsets[1:])
        kept: List[_Chunk] = []
        for chunk in self._chunks:
            used = chunk.used
            alive = chunk.alive[:used]
            live = int(alive.sum())
            if live == 0:
                self._drop_chunk(chunk)
                continue
            if live < used:
                keep = np.nonzero(alive)[0]
                data = self._data(chunk)
                # Fancy-index RHS gathers into a temporary first, so the
                # in-place move is overlap-safe.
                data[:live] = data[keep]
                chunk.strict[:live] = chunk.strict[keep]
                chunk.used = live
                chunk.alive[:live] = True
                chunk.alive[live:] = False
            kept.append(chunk)
        self._chunks = kept
        self._rows = int(offsets[old_rows])
        self._dead = 0
        self._offsets = None
        return offsets

    def clear(self) -> None:
        for chunk in self._chunks:
            self._drop_chunk(chunk)
        self._chunks = []
        self._rows = 0
        self._dead = 0
        self._offsets = None

    # -- reading --------------------------------------------------------------

    def blocks(self) -> Iterator[RowBlock]:
        """Stream the store's rows as per-chunk blocks (faulting lazily).

        Views stay valid even if their chunk is evicted while the caller
        iterates on — the mapping lives until the view is dropped.
        """
        width = self.width
        base = 0
        for chunk in self._chunks:
            used = chunk.used
            if used == 0:
                continue
            data = self._data(chunk)
            yield RowBlock(
                start=base,
                stop=base + used,
                matrix=data[:used, :width],
                strict=chunk.strict[:used],
                tol_base=data[:used, width],
                tol_signed=data[:used, width + 1],
                alive=chunk.alive[:used],
            )
            base += used

    def export_rows(self):
        """Trimmed contiguous copies of (matrix, strict, alive) — the
        legacy pickle/snapshot format of the dense path."""
        if self.width is None:
            return None
        matrix = np.empty((self._rows, self.width))
        strict = np.empty(self._rows, dtype=bool)
        alive = np.empty(self._rows, dtype=bool)
        for block in self.blocks():
            matrix[block.start : block.stop] = block.matrix
            strict[block.start : block.stop] = block.strict
            alive[block.start : block.stop] = block.alive
        return matrix, strict, alive

    def materialize(self):
        """Contiguous copies of (matrix, strict, tol_signed) for packed views."""
        if self.width is None:
            return None
        matrix = np.empty((self._rows, self.width))
        strict = np.empty(self._rows, dtype=bool)
        tol_signed = np.empty(self._rows)
        for block in self.blocks():
            matrix[block.start : block.stop] = block.matrix
            strict[block.start : block.stop] = block.strict
            tol_signed[block.start : block.stop] = block.tol_signed
        return matrix, strict, tol_signed

    # -- shard transfer -------------------------------------------------------

    def _adopt_chunk(self, chunk: _Chunk, source: "ChunkedMatrixStore") -> None:
        """Move one chunk object (and its file) from ``source`` into self."""
        source._forget(chunk)
        if chunk.path is not None:
            new_path = os.path.join(
                self._ensure_dir(), f"chunk-{self._chunk_seq:06d}.f64"
            )
            self._chunk_seq += 1
            # A rename keeps any open mapping valid: same inode, new name.
            os.replace(chunk.path, new_path)
            chunk.path = new_path
        self._chunks.append(chunk)
        if chunk.data is not None:
            self._track_resident(chunk)

    def adopt(self, other: "ChunkedMatrixStore") -> int:
        """Append every chunk of ``other`` without rewriting rows.

        Returns the row offset its rows now start at; ``other`` is left
        empty.  This is the merge half of shard split/merge: O(chunks)
        bookkeeping and file renames, zero row data moved.
        """
        if other.width is not None:
            self._check_width(other.width)
        base = self._rows
        for chunk in list(other._chunks):
            self._adopt_chunk(chunk, other)
        self._rows += other._rows
        self._dead += other._dead
        other._chunks = []
        other._rows = 0
        other._dead = 0
        other._offsets = None
        self._offsets = None
        self._evict(exclude=None)
        return base

    def split_at(self, row: int) -> Tuple["ChunkedMatrixStore", int]:
        """Detach rows [row, rows) into a new store of the same config.

        Whole chunks past the boundary are *moved* (adopted); only the
        rows of the single chunk the boundary cuts through are copied.
        Returns ``(new_store, copied_rows)``.
        """
        if not 0 <= row <= self._rows:
            raise ValueError(f"split row {row} outside [0, {self._rows}]")
        other = ChunkedMatrixStore(self.config)
        other.width = self.width
        other._telemetry = self._telemetry
        other._label = self._label
        if row == self._rows:
            return other, 0
        offsets = self._chunk_offsets()
        index = int(np.searchsorted(offsets, row, side="right")) - 1
        local = row - int(offsets[index])
        copied = 0
        move_from = index
        if local > 0:
            chunk = self._chunks[index]
            used = chunk.used
            width = self.width
            data = self._data(chunk)
            tail_alive = chunk.alive[local:used].copy()
            other.append(
                np.ascontiguousarray(data[local:used, :width]),
                chunk.strict[local:used].copy(),
                data[local:used, width].copy(),
                data[local:used, width + 1].copy(),
            )
            # append marks everything alive; restore the real flags.
            cursor = 0
            for dest in other._chunks:
                take = min(dest.used, tail_alive.size - cursor)
                dest.alive[:take] = tail_alive[cursor : cursor + take]
                cursor += take
            copied = used - local
            chunk.used = local
            chunk.alive[local:] = False
            chunk.strict[local:] = False
            move_from = index + 1
        for chunk in list(self._chunks[move_from:]):
            other._adopt_chunk(chunk, self)
        del self._chunks[move_from:]
        self._offsets = None
        other._offsets = None
        self._rows = sum(chunk.used for chunk in self._chunks)
        other._rows = sum(chunk.used for chunk in other._chunks)
        self._recount_dead()
        other._recount_dead()
        return other, copied
