"""Key-range sharding over :class:`~repro.filtering.AspeLibrary`.

A :class:`ShardedAspeLibrary` partitions the subscription key space into
contiguous ranges, one :class:`AspeShard` (backed by its own
``AspeLibrary`` and packed-row store) per range.  The shard count is a
*runtime* property: :meth:`split_shard` cuts one shard in two at a pivot
key — when keys were loaded in order the cut lands on a packed-row
boundary and whole chunks simply change owner — and :meth:`merge_shards`
joins adjacent ranges by chunk adoption, rewriting zero rows.  This is
what lets the elasticity enforcer change partition granularity mid-run
instead of only migrating fixed slices (the static-slicing limitation
the paper concedes in §VII).

Matching semantics are identical to a single ``AspeLibrary``: a global
first-store sequence number per subscription reproduces the insertion
order a single library's result lists follow, so a sharded M-slice emits
byte-identical match lists (and therefore byte-identical notification
logs) regardless of how many shards it holds or when they split.

The class deliberately does *not* expose ``packed_view``: the parallel
matching executors detect the capability and keep sharded backends on
the inline path (one flat matrix snapshot would defeat the point of
out-of-core shards).
"""

from __future__ import annotations

import bisect

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..base import FilteringLibrary
from .config import StoreConfig

__all__ = ["AspeShard", "ShardOpResult", "ShardedAspeLibrary"]


@dataclass
class AspeShard:
    """One contiguous key range ``[key_lo, key_hi)`` and its library.

    ``None`` bounds are open (−∞ / +∞).  Adjacent shards share their
    boundary: ``shards[i].key_hi == shards[i + 1].key_lo``.
    """

    key_lo: Optional[int]
    key_hi: Optional[int]
    library: "FilteringLibrary"

    def subscription_count(self) -> int:
        return self.library.subscription_count()


@dataclass(frozen=True)
class ShardOpResult:
    """Outcome of one shard split or merge."""

    op: str  # "split" or "merge"
    shard_index: int
    pivot_key: Optional[int]
    moved_subscriptions: int
    #: Rows physically copied (the chunk the split boundary cuts
    #: through, or every moved row on the rebuild slow path).  Merges
    #: and boundary-aligned splits rewrite zero rows.
    rows_rewritten: int
    bytes_rewritten: int
    shards_before: int
    shards_after: int


class ShardedAspeLibrary(FilteringLibrary):
    """A filtering library of key-range shards with runtime split/merge."""

    def __init__(self, store_config: Optional[StoreConfig] = None) -> None:
        self._store_config = (
            store_config if store_config is not None else StoreConfig.from_env()
        )
        self._shards: List[AspeShard] = [
            AspeShard(key_lo=None, key_hi=None, library=self._new_library())
        ]
        #: Global first-store order, reproducing single-library result
        #: order across shards (dict-slot semantics: a re-store keeps the
        #: original position, remove-then-store moves to the end).
        self._seq: Dict[int, int] = {}
        self._next_seq = 0
        self._telemetry = None
        self._label = "aspe"
        self.split_count = 0
        self.merge_count = 0

    def _new_library(self):
        from ..aspe import AspeLibrary

        library = AspeLibrary(store_config=self._store_config)
        if getattr(self, "_telemetry", None) is not None:
            library.bind_telemetry(self._telemetry, self._label)
        return library

    def _shard_for(self, key: int) -> AspeShard:
        shards = self._shards
        if len(shards) == 1:
            return shards[0]
        cuts = [shard.key_lo for shard in shards[1:]]
        return shards[bisect.bisect_right(cuts, key)]

    # -- FilteringLibrary interface -------------------------------------------

    def store(self, sub_id: int, filter_data) -> None:
        self._shard_for(sub_id).library.store(sub_id, filter_data)
        if sub_id not in self._seq:
            self._seq[sub_id] = self._next_seq
            self._next_seq += 1

    def store_many(self, items) -> int:
        """Bulk-store, routing each batch slice to its shard."""
        items = list(items)
        per_shard: Dict[int, List] = {}
        by_id = {id(shard): shard for shard in self._shards}
        for sub_id, subscription in items:
            shard = self._shard_for(sub_id)
            per_shard.setdefault(id(shard), []).append((sub_id, subscription))
        for shard_key, shard_items in per_shard.items():
            by_id[shard_key].library.store_many(shard_items)
        for sub_id, _ in items:
            if sub_id not in self._seq:
                self._seq[sub_id] = self._next_seq
                self._next_seq += 1
        return len(items)

    def remove(self, sub_id: int) -> None:
        self._shard_for(sub_id).library.remove(sub_id)  # KeyError if unknown
        del self._seq[sub_id]

    def match(self, publication_data) -> List[int]:
        matched: List[int] = []
        # Every shard type-checks the ciphertext, so an empty sharded
        # library rejects bad input exactly like an empty AspeLibrary.
        for shard in self._shards:
            matched.extend(shard.library.match(publication_data))
        matched.sort(key=self._seq.__getitem__)
        return matched

    def match_batch(self, publications: Sequence) -> List[List[int]]:
        merged: List[List[int]] = [[] for _ in publications]
        for shard in self._shards:
            for index, ids in enumerate(shard.library.match_batch(publications)):
                merged[index].extend(ids)
        key = self._seq.__getitem__
        for ids in merged:
            ids.sort(key=key)
        return merged

    def subscription_count(self) -> int:
        return sum(shard.library.subscription_count() for shard in self._shards)

    def state_size_bytes(self) -> int:
        return sum(shard.library.state_size_bytes() for shard in self._shards)

    def export_state(self):
        order = [
            sub_id
            for sub_id, _ in sorted(self._seq.items(), key=lambda kv: kv[1])
        ]
        return {
            "sharded": True,
            "bounds": [(shard.key_lo, shard.key_hi) for shard in self._shards],
            "order": order,
            "shards": [shard.library.export_state() for shard in self._shards],
        }

    def import_state(self, state) -> None:
        self._seq = {}
        self._next_seq = 0
        if isinstance(state, dict) and state.get("sharded"):
            self._shards = []
            for (key_lo, key_hi), shard_state in zip(
                state["bounds"], state["shards"]
            ):
                library = self._new_library()
                library.import_state(shard_state)
                self._shards.append(AspeShard(key_lo, key_hi, library))
            for sub_id in state["order"]:
                self._seq[sub_id] = self._next_seq
                self._next_seq += 1
            return
        # Plain {sub_id: subscription} mapping (a non-sharded peer's
        # export): adopt it as a single full-range shard.
        library = self._new_library()
        library.import_state(dict(state))
        self._shards = [AspeShard(None, None, library)]
        for sub_id in state:
            self._seq[sub_id] = self._next_seq
            self._next_seq += 1

    # -- shard management -----------------------------------------------------

    def shard_count(self) -> int:
        return len(self._shards)

    def shard_bounds(self) -> List[Tuple[Optional[int], Optional[int], int]]:
        """Per-shard ``(key_lo, key_hi, subscription_count)``."""
        return [
            (shard.key_lo, shard.key_hi, shard.subscription_count())
            for shard in self._shards
        ]

    def can_split(self) -> bool:
        return any(shard.subscription_count() >= 2 for shard in self._shards)

    def can_merge(self) -> bool:
        return len(self._shards) >= 2

    @staticmethod
    def _row_bytes(library) -> int:
        chunks = getattr(library, "_chunks", None)
        if chunks is not None and chunks.width is not None:
            width = chunks.width
        elif getattr(library, "_matrix", None) is not None:
            width = library._matrix.shape[1]
        else:
            return 0
        # float64 row data + tolerance columns, plus the strict/alive flags.
        return (width + 2) * 8 + 2

    @staticmethod
    def _span_boundary(library, moving_ids) -> Optional[int]:
        """Row boundary separating staying rows from moving rows, if any.

        Returns the split row when every moving subscription's rows sit
        entirely above every staying subscription's — true whenever keys
        were stored in key order (the bulk-load layout) — else ``None``.
        """
        moving = set(moving_ids)
        min_moving_start = library._rows
        max_staying_stop = 0
        for sub_id, (start, stop) in library._spans.items():
            if stop <= start:
                continue
            if sub_id in moving:
                if start < min_moving_start:
                    min_moving_start = start
            elif stop > max_staying_stop:
                max_staying_stop = stop
        if max_staying_stop <= min_moving_start:
            return min_moving_start
        return None

    def split_shard(
        self, index: Optional[int] = None, pivot_key: Optional[int] = None
    ) -> ShardOpResult:
        """Split one shard's key range in two at ``pivot_key``.

        Defaults: the most populated shard, cut at its median key.  When
        the shard's rows are laid out in key order (bulk load), the cut
        is a row-boundary detach — whole chunks move, only the one chunk
        the boundary crosses is copied.  Interleaved layouts fall back
        to rebuilding the moving subscriptions into the new shard.
        """
        shards = self._shards
        if index is None:
            index = max(
                range(len(shards)),
                key=lambda i: shards[i].subscription_count(),
            )
        if not 0 <= index < len(shards):
            raise ValueError(f"shard index {index} outside [0, {len(shards)})")
        shard = shards[index]
        library = shard.library
        keys = sorted(library.subscription_ids())
        if len(keys) < 2:
            raise ValueError(
                f"shard {index} holds {len(keys)} subscription(s); "
                f"need at least 2 to split"
            )
        if pivot_key is None:
            pivot_key = keys[len(keys) // 2]
        if not keys[0] < pivot_key <= keys[-1]:
            raise ValueError(
                f"pivot key {pivot_key} does not separate shard {index} "
                f"(keys span [{keys[0]}, {keys[-1]}])"
            )
        moving_ids = [k for k in library.subscription_ids() if k >= pivot_key]
        row_bytes = self._row_bytes(library)
        boundary = self._span_boundary(library, moving_ids)
        if boundary is not None:
            new_library, rewritten = library.detach_suffix(boundary, moving_ids)
        else:
            new_library = self._new_library()
            items = [(k, library.get_subscription(k)) for k in moving_ids]
            for k in moving_ids:
                library.remove(k)
            new_library.store_many(items)
            rewritten = new_library.rows_appended
        before = len(shards)
        shards[index] = AspeShard(shard.key_lo, pivot_key, library)
        shards.insert(index + 1, AspeShard(pivot_key, shard.key_hi, new_library))
        self.split_count += 1
        return ShardOpResult(
            op="split",
            shard_index=index,
            pivot_key=pivot_key,
            moved_subscriptions=len(moving_ids),
            rows_rewritten=rewritten,
            bytes_rewritten=rewritten * row_bytes,
            shards_before=before,
            shards_after=before + 1,
        )

    def merge_shards(self, index: Optional[int] = None) -> ShardOpResult:
        """Merge shards ``index`` and ``index + 1`` by chunk adoption.

        Defaults to the adjacent pair with the fewest combined
        subscriptions.  No rows are rewritten: the right shard's chunks
        change owner and its spans shift by a constant offset.
        """
        shards = self._shards
        if len(shards) < 2:
            raise ValueError("need at least 2 shards to merge")
        if index is None:
            index = min(
                range(len(shards) - 1),
                key=lambda i: (
                    shards[i].subscription_count()
                    + shards[i + 1].subscription_count()
                ),
            )
        if not 0 <= index < len(shards) - 1:
            raise ValueError(
                f"merge index {index} outside [0, {len(shards) - 1})"
            )
        left = shards[index]
        right = shards[index + 1]
        moved = right.subscription_count()
        left.library.absorb(right.library)
        before = len(shards)
        shards[index] = AspeShard(left.key_lo, right.key_hi, left.library)
        del shards[index + 1]
        self.merge_count += 1
        return ShardOpResult(
            op="merge",
            shard_index=index,
            pivot_key=right.key_lo,
            moved_subscriptions=moved,
            rows_rewritten=0,
            bytes_rewritten=0,
            shards_before=before,
            shards_after=before - 1,
        )

    # -- store configuration and observability --------------------------------

    @property
    def store_config(self) -> StoreConfig:
        return self._store_config

    def configure_store(self, config: StoreConfig) -> None:
        """Select the backing store for all (empty) shards."""
        if config == self._store_config:
            return
        self._store_config = config
        for shard in self._shards:
            shard.library.configure_store(config)

    def bind_telemetry(self, telemetry, label: str = "aspe") -> None:
        self._telemetry = telemetry
        self._label = label
        for shard in self._shards:
            shard.library.bind_telemetry(telemetry, label)

    def store_stats(self) -> Dict[str, object]:
        """Aggregated backing-store statistics across shards."""
        totals: Dict[str, object] = {
            "backend": self._store_config.backend,
            "shards": len(self._shards),
            "chunks": 0,
            "rows": 0,
            "dead_rows": 0,
            "resident_chunks": 0,
            "resident_bytes": 0,
            "resident_peak_bytes": 0,
            "faults": 0,
            "evictions": 0,
        }
        for shard in self._shards:
            stats = shard.library.store_stats()
            for key in (
                "chunks",
                "rows",
                "dead_rows",
                "resident_chunks",
                "resident_bytes",
                "resident_peak_bytes",
                "faults",
                "evictions",
            ):
                totals[key] += stats[key]
        return totals
