"""Out-of-core backing store and key-range sharding for packed matrices.

See DESIGN.md §8: :class:`ChunkedMatrixStore` keeps the packed predicate
rows in fixed-size chunks (optionally ``numpy.memmap``-persisted with an
LRU-bounded resident set), and :class:`ShardedAspeLibrary` partitions the
key space into runtime-splittable/mergeable :class:`AspeShard` ranges on
top of it.
"""

from .config import STORE_BACKENDS, StoreConfig
from .chunks import ChunkedMatrixStore, RowBlock
from .shard import AspeShard, ShardOpResult, ShardedAspeLibrary

__all__ = [
    "STORE_BACKENDS",
    "StoreConfig",
    "ChunkedMatrixStore",
    "RowBlock",
    "AspeShard",
    "ShardOpResult",
    "ShardedAspeLibrary",
]
