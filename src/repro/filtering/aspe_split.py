"""ASPE with random dimension splitting (hardened variant).

The base ASPE construction (:mod:`repro.filtering.aspe`) is vulnerable to
known-plaintext attacks: enough (plaintext, ciphertext) pairs determine
the mixing matrix by solving a linear system.  Wong et al.'s *splitting*
enhancement breaks that linearity: a secret bit string ``S`` decides, per
coordinate, whether the publication side or the subscription side of the
vector is split into two random shares.

For each coordinate ``i`` of the plaintext vectors ``u`` (publication) and
``q`` (query):

* if ``S[i] = 1``, ``u[i]`` is split: ``ua[i] + ub[i] = u[i]`` with a
  fresh random share per encryption, while ``qa[i] = qb[i] = q[i]``;
* if ``S[i] = 0``, the roles swap: ``qa[i] + qb[i] = q[i]`` and
  ``ua[i] = ub[i] = u[i]``.

Both halves are mixed by independent invertible matrices (``M₁``, ``M₂``),
and the inner product is preserved as a *sum*:
``ûa·q̂a + ûb·q̂b = ua·qa + ub·qb = u·q``.

Ciphertexts are represented as the concatenation of the two halves, so the
unmodified :func:`repro.filtering.aspe.match_encrypted` and
:class:`~repro.filtering.aspe.AspeLibrary` work on them as-is — the match
decision is the single inner product of the concatenated vectors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .aspe import (
    AspeKey,
    EncryptedPredicate,
    EncryptedPublication,
    EncryptedSubscription,
)
from .predicates import Op, Predicate, PredicateSet

__all__ = ["AspeSplitKey", "AspeSplitCipher"]


@dataclass(frozen=True)
class AspeSplitKey:
    """Secret key of the split variant: two mixing matrices + split bits."""

    dimensions: int
    split_bits: Tuple[int, ...]
    matrix_a: np.ndarray
    inverse_a: np.ndarray
    matrix_b: np.ndarray
    inverse_b: np.ndarray

    @classmethod
    def generate(
        cls, dimensions: int, rng: Optional[random.Random] = None
    ) -> "AspeSplitKey":
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        rng = rng or random.Random()
        key_a = AspeKey.generate(dimensions, rng)
        key_b = AspeKey.generate(dimensions, rng)
        n = dimensions + 3
        split_bits = tuple(rng.randrange(2) for _ in range(n))
        return cls(
            dimensions=dimensions,
            split_bits=split_bits,
            matrix_a=key_a.matrix,
            inverse_a=key_a.inverse,
            matrix_b=key_b.matrix,
            inverse_b=key_b.inverse,
        )

    @property
    def cipher_dimensions(self) -> int:
        """Length of a (concatenated) ciphertext vector."""
        return 2 * (self.dimensions + 3)


class AspeSplitCipher:
    """Encrypts publications/subscriptions under an :class:`AspeSplitKey`.

    API-compatible with :class:`~repro.filtering.aspe.AspeCipher`: produces
    :class:`EncryptedPublication` / :class:`EncryptedSubscription` whose
    (concatenated) vectors plug into the same matching code.
    """

    def __init__(self, key: AspeSplitKey, rng: Optional[random.Random] = None):
        self.key = key
        self._rng = rng or random.Random()

    # -- encryption -----------------------------------------------------------

    def encrypt_publication(self, attributes: Sequence[float]) -> EncryptedPublication:
        d = self.key.dimensions
        if len(attributes) != d:
            raise ValueError(f"expected {d} attributes, got {len(attributes)}")
        r = self._rng.uniform(0.5, 2.0)
        u = np.empty(d + 3)
        u[:d] = attributes
        u[d] = 1.0
        u[d + 1] = self._rng.uniform(-10.0, 10.0)
        u[d + 2] = self._rng.uniform(-10.0, 10.0)
        u *= r
        ua, ub = self._split(u, split_when=1)
        vector = np.concatenate(
            [self.key.matrix_a.T @ ua, self.key.matrix_b.T @ ub]
        )
        return EncryptedPublication(vector=vector)

    def encrypt_predicate(self, predicate: Predicate) -> List[EncryptedPredicate]:
        d = self.key.dimensions
        if predicate.attribute >= d:
            raise ValueError(
                f"predicate attribute {predicate.attribute} outside schema of {d}"
            )
        if predicate.op is Op.EQ:
            return [
                self._encrypt_comparison(predicate.attribute, predicate.constant, "ge"),
                self._encrypt_comparison(predicate.attribute, predicate.constant, "le"),
            ]
        op_code = {Op.GT: "gt", Op.GE: "ge", Op.LT: "lt", Op.LE: "le"}[predicate.op]
        return [
            self._encrypt_comparison(predicate.attribute, predicate.constant, op_code)
        ]

    def encrypt_subscription(self, predicate_set: PredicateSet) -> EncryptedSubscription:
        encrypted: List[EncryptedPredicate] = []
        for predicate in predicate_set:
            encrypted.extend(self.encrypt_predicate(predicate))
        return EncryptedSubscription(predicates=tuple(encrypted))

    # -- internals ----------------------------------------------------------------

    def _encrypt_comparison(
        self, attribute: int, constant: float, op_code: str
    ) -> EncryptedPredicate:
        d = self.key.dimensions
        s = self._rng.uniform(0.5, 2.0)
        q = np.zeros(d + 3)
        q[attribute] = 1.0
        q[d] = -constant
        q *= s
        qa, qb = self._split(q, split_when=0)
        vector = np.concatenate([self.key.inverse_a @ qa, self.key.inverse_b @ qb])
        return EncryptedPredicate(op_code=op_code, vector=vector)

    def _split(self, vector: np.ndarray, split_when: int) -> Tuple[np.ndarray, np.ndarray]:
        """Share coordinates whose split bit equals ``split_when``."""
        a = vector.copy()
        b = vector.copy()
        for index, bit in enumerate(self.key.split_bits):
            if bit == split_when:
                share = self._rng.uniform(-abs(vector[index]) - 1.0,
                                          abs(vector[index]) + 1.0)
                a[index] = share
                b[index] = vector[index] - share
        return a, b
