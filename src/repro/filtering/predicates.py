"""Plaintext content-based filtering model: attributes and predicates.

Publications carry a fixed-size tuple of numeric attributes (the paper's
ASPE schema uses d = 4).  Subscriptions are conjunctions of comparison
predicates over attribute indices — the classic content-based model
(attribute op constant).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = ["Op", "Predicate", "PredicateSet"]


class Op(enum.Enum):
    """Comparison operators supported by predicates."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "="

    def evaluate(self, value: float, constant: float) -> bool:
        if self is Op.LT:
            return value < constant
        if self is Op.LE:
            return value <= constant
        if self is Op.GT:
            return value > constant
        if self is Op.GE:
            return value >= constant
        return value == constant


@dataclass(frozen=True)
class Predicate:
    """A single comparison ``attributes[attribute] op constant``."""

    attribute: int
    op: Op
    constant: float

    def __post_init__(self):
        if self.attribute < 0:
            raise ValueError("attribute index must be non-negative")

    def matches(self, attributes: Sequence[float]) -> bool:
        if self.attribute >= len(attributes):
            raise IndexError(
                f"predicate on attribute {self.attribute} but publication has "
                f"{len(attributes)} attributes"
            )
        return self.op.evaluate(attributes[self.attribute], self.constant)

    def __str__(self) -> str:
        return f"a{self.attribute} {self.op.value} {self.constant:g}"


@dataclass(frozen=True)
class PredicateSet:
    """A conjunction of predicates (a plaintext subscription filter)."""

    predicates: Tuple[Predicate, ...]

    def __post_init__(self):
        if not self.predicates:
            raise ValueError("a subscription filter needs at least one predicate")

    @classmethod
    def of(cls, *predicates: Predicate) -> "PredicateSet":
        return cls(tuple(predicates))

    def matches(self, attributes: Sequence[float]) -> bool:
        return all(p.matches(attributes) for p in self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)

    def __iter__(self):
        return iter(self.predicates)

    def __str__(self) -> str:
        return " AND ".join(str(p) for p in self.predicates)
