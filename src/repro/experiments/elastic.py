"""Figures 8 and 9: elastic scaling under varying workloads.

Both experiments share the same shape (paper §VI-E): the system starts on
a *single* host running all 32 slices (8 AP + 16 M + 8 EP), is loaded with
100 K encrypted subscriptions, and is then driven by a publication-rate
profile — a synthetic trapezoid ramping to 350 publications/s for Figure 8
and the Frankfurt Stock Exchange trace (sped up, peak scaled to 190
publications/s) for Figure 9.  Four series are reported over 30-second
windows: the offered rate, the number of hosts, the min/avg/max per-host
CPU load, and the notification delays.

A ``time_scale`` parameter compresses the experiment relative to the
paper's wall-clock length (the control-loop constants — probe interval
and grace period — stay fixed, so very small scales leave the policy too
little time to converge; 0.25–1.0 preserves the dynamics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..coord import CoordinationKernel
from ..elastic import ElasticityManager, ElasticityPolicy, ManagerRecord
from ..engine import MigrationReport
from ..metrics import WindowStats, WindowedSeries
from ..workloads import FrankfurtTraceModel, trapezoid
from .harness import Deployment, ExperimentSetup

__all__ = ["ElasticRunResult", "run_elastic", "run_figure8", "run_figure9"]


@dataclass
class ElasticRunResult:
    """Everything the elasticity plots need, in 30 s windows."""

    duration_s: float
    window_s: float
    #: (window start, offered publications/s).
    rate_series: List[Tuple[float, float]]
    #: (probe time, active engine hosts).
    host_series: List[Tuple[float, int]]
    #: (probe time, min, avg, max per-host CPU utilization).
    utilization_series: List[Tuple[float, float, float, float]]
    #: Notification delays aggregated per window.
    delay_windows: List[WindowStats]
    migration_reports: List[MigrationReport]
    decisions: List[ManagerRecord]
    published: int
    notified: int
    #: (delivered_at, delay) of every notified publication — the raw
    #: samples behind :attr:`delay_windows`, kept for percentile queries.
    delay_samples: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def max_hosts(self) -> int:
        return max((count for _, count in self.host_series), default=0)

    @property
    def final_hosts(self) -> int:
        return self.host_series[-1][1] if self.host_series else 0

    @property
    def first_scale_out_s(self) -> Optional[float]:
        """Time the first scale-out decision finished executing."""
        for record in self.decisions:
            if record.new_hosts > 0:
                return record.time
        return None

    def time_to_hosts(self, count: int) -> Optional[float]:
        """First probe time at least ``count`` hosts were running.

        The provisioning-lead-time metric of the signal ablation: a
        policy that reaches the reference fleet size earlier provisioned
        sooner under the same offered load.
        """
        for t, hosts in self.host_series:
            if hosts >= count:
                return t
        return None

    def host_seconds(self) -> float:
        """Integral of the host count over probe time (cost proxy)."""
        total = 0.0
        for (t0, hosts), (t1, _) in zip(self.host_series, self.host_series[1:]):
            total += hosts * (t1 - t0)
        return total

    def delay_p99_s(self, since: float = 0.0) -> Optional[float]:
        """p99 of all notification delays delivered after ``since``."""
        from ..metrics import percentile

        values = sorted(
            delay for t, delay in self.delay_samples if t >= since
        )
        if not values:
            return None
        return percentile(values, 0.99)

    def utilization_envelope(self, since: float = 0.0, until: float = float("inf"),
                             min_hosts: int = 2) -> Tuple[float, float, float]:
        """(avg of mins, avg of avgs, avg of maxes) over multi-host probes.

        Single-host periods are excluded: with one host the envelope
        degenerates and the paper's 40–70% band statement concerns the
        scaled-out phases.
        """
        rows = [
            (lo, avg, hi)
            for (t, lo, avg, hi), (_, count) in zip(
                self.utilization_series, self.host_series
            )
            if since <= t < until and count >= min_hosts
        ]
        if not rows:
            return (0.0, 0.0, 0.0)
        n = len(rows)
        return (
            sum(r[0] for r in rows) / n,
            sum(r[1] for r in rows) / n,
            sum(r[2] for r in rows) / n,
        )


def run_elastic(
    rate_fn: Callable[[float], float],
    duration_s: float,
    setup: Optional[ExperimentSetup] = None,
    policy: Optional[ElasticityPolicy] = None,
    probe_interval_s: float = 5.0,
    window_s: float = 30.0,
    enforcer=None,
    drain_s: float = 30.0,
) -> ElasticRunResult:
    """Run one elastic-scaling experiment and collect its series."""
    setup = setup or ExperimentSetup()
    policy = policy or ElasticityPolicy()
    deployment = Deployment(setup)
    deployment.deploy_single_host()
    deployment.preload_subscriptions()
    env = deployment.env

    manager = ElasticityManager(
        deployment.hub,
        deployment.cloud,
        deployment.engine_hosts,
        policy=policy,
        enforcer=enforcer,
        coord=CoordinationKernel(),
        probe_interval_s=probe_interval_s,
    )
    host_series: List[Tuple[float, int]] = []
    utilization_series: List[Tuple[float, float, float, float]] = []

    def record(probes):
        utils = [h.cpu_utilization for h in probes.hosts.values()]
        if utils:
            host_series.append((probes.time, len(utils)))
            utilization_series.append(
                (probes.time, min(utils), sum(utils) / len(utils), max(utils))
            )

    manager.probe_listeners.append(record)
    manager.start()
    deployment.source.publish_profile(rate_fn, duration_s=duration_s)
    env.run(until=duration_s + drain_s)

    delay_series = WindowedSeries(window_s=window_s)
    for sample in deployment.hub.delay_tracker.samples:
        delay_series.add(sample.delivered_at, sample.delay)

    rate_series = [
        (t, rate_fn(min(t, duration_s - 1e-9)))
        for t in _window_starts(duration_s, window_s)
    ]
    return ElasticRunResult(
        duration_s=duration_s,
        window_s=window_s,
        rate_series=rate_series,
        host_series=host_series,
        utilization_series=utilization_series,
        delay_windows=delay_series.windows(),
        migration_reports=list(manager.migration_reports),
        decisions=list(manager.history),
        published=deployment.hub.published_count,
        notified=deployment.hub.notified_publications,
        delay_samples=[
            (sample.delivered_at, sample.delay)
            for sample in deployment.hub.delay_tracker.samples
        ],
    )


def _window_starts(duration_s: float, window_s: float) -> List[float]:
    starts = []
    t = 0.0
    while t < duration_s:
        starts.append(t)
        t += window_s
    return starts


def run_figure8(
    time_scale: float = 0.25,
    peak_rate: float = 350.0,
    setup: Optional[ExperimentSetup] = None,
    policy: Optional[ElasticityPolicy] = None,
) -> ElasticRunResult:
    """Synthetic benchmark: ramp 0 → ``peak_rate`` → 0 (paper Figure 8).

    At ``time_scale=1.0`` the profile matches the paper's pacing (about
    20 minutes of ramp-up, 10 of stability, 20 of ramp-down); the default
    compresses it 4× while keeping the same rates, hosts and envelopes.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    ramp = 1200.0 * time_scale
    plateau = 600.0 * time_scale
    profile = trapezoid(ramp_up_s=ramp, plateau_s=plateau, ramp_down_s=ramp,
                        peak=peak_rate)
    duration = 2.0 * ramp + plateau + 300.0 * time_scale  # idle tail
    return run_elastic(profile, duration, setup=setup, policy=policy)


def run_figure9(
    time_scale: float = 0.5,
    peak_rate: float = 190.0,
    setup: Optional[ExperimentSetup] = None,
    policy: Optional[ElasticityPolicy] = None,
    trace: Optional[FrankfurtTraceModel] = None,
) -> ElasticRunResult:
    """Trace replay: the Frankfurt Stock Exchange day (paper Figure 9).

    At ``time_scale=1.0`` the trace is replayed at the paper's speed
    (one trace hour per three experiment minutes, 40 minutes total,
    peak scaled to 190 publications/s).
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    trace = trace or FrankfurtTraceModel()
    duration = 2400.0 * time_scale
    speedup = 20.0 / time_scale
    profile = trace.experiment_profile(
        peak_rate=peak_rate, speedup=speedup, start_hour=6.5
    )
    return run_elastic(profile, duration, setup=setup, policy=policy)
