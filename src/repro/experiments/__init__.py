"""Experiment wiring: one module per paper table/figure (DESIGN.md §4).

* :mod:`repro.experiments.harness` — cluster + hub deployment shared by all.
* :mod:`repro.experiments.baseline` — Figure 6 (throughput and delays).
* :mod:`repro.experiments.migration` — Table I and Figure 7.
* :mod:`repro.experiments.elastic` — Figures 8 and 9.
* :mod:`repro.experiments.ablations` — design-choice ablations.
"""

from .harness import Deployment, ExperimentSetup, host_split
from .baseline import (
    BaselineResult,
    estimate_capacity,
    is_rate_sustainable,
    max_throughput,
    measure_delays,
    run_figure6,
)
from .migration import (
    Figure7Result,
    MigrationTimingRow,
    migration_setup,
    run_figure7,
    run_table1,
)
from .elastic import ElasticRunResult, run_elastic, run_figure8, run_figure9
from .chaos import (
    ChaosOutcome,
    multiset_digest,
    notification_multiset,
    phase_spans_tile,
    run_manager_crash,
    run_partition_heal,
    run_rack_loss,
)
from .cost import CostComparison, host_seconds, run_cost_effectiveness
from .ablations import (
    AblationRow,
    run_grace_period_ablation,
    run_selection_ablation,
    run_target_utilization_ablation,
)

__all__ = [
    "AblationRow",
    "BaselineResult",
    "ChaosOutcome",
    "CostComparison",
    "Deployment",
    "host_seconds",
    "run_cost_effectiveness",
    "ElasticRunResult",
    "ExperimentSetup",
    "Figure7Result",
    "MigrationTimingRow",
    "estimate_capacity",
    "host_split",
    "is_rate_sustainable",
    "max_throughput",
    "measure_delays",
    "migration_setup",
    "multiset_digest",
    "notification_multiset",
    "phase_spans_tile",
    "run_elastic",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_grace_period_ablation",
    "run_manager_crash",
    "run_partition_heal",
    "run_rack_loss",
    "run_selection_ablation",
    "run_table1",
    "run_target_utilization_ablation",
]
