"""Cost-effectiveness: elastic vs. static provisioning (paper §I).

The paper's motivation: statically provisioning a pub/sub service for the
peak of a stock-exchange day is cost-ineffective because the volume is
near zero outside trading hours.  This experiment quantifies the claim on
the trace replay: it integrates the host-seconds an elastic deployment
actually consumed and compares them with static deployments provisioned
for the peak (and, as a lower bound, for the average) of the same load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .elastic import ElasticRunResult, run_figure9
from .harness import ExperimentSetup

__all__ = ["CostComparison", "host_seconds", "run_cost_effectiveness"]


def host_seconds(result: ElasticRunResult) -> float:
    """Integrate engine host usage over the run (piecewise constant)."""
    series = result.host_series
    if not series:
        return 0.0
    total = series[0][1] * series[0][0]  # from t=0 to the first probe
    for (t0, count), (t1, _next_count) in zip(series, series[1:]):
        total += count * (t1 - t0)
    total += series[-1][1] * max(0.0, result.duration_s - series[-1][0])
    return total


@dataclass(frozen=True)
class CostComparison:
    """Host-seconds of elastic vs. static provisioning for one workload."""

    duration_s: float
    elastic_host_seconds: float
    peak_hosts: int
    average_hosts: float

    @property
    def static_peak_host_seconds(self) -> float:
        return self.peak_hosts * self.duration_s

    @property
    def savings_vs_static_peak(self) -> float:
        """Fraction of the static-peak bill the elastic deployment saves."""
        static = self.static_peak_host_seconds
        if static <= 0:
            return 0.0
        return 1.0 - self.elastic_host_seconds / static


def run_cost_effectiveness(
    time_scale: float = 0.5,
    peak_rate: float = 190.0,
    setup: Optional[ExperimentSetup] = None,
    result: Optional[ElasticRunResult] = None,
) -> CostComparison:
    """Run (or reuse) the trace replay and compare provisioning costs.

    A static deployment must hold the elastic run's *maximum* host count
    for the whole day to survive the afternoon spike; the elastic bill is
    the integral of the actual host count.
    """
    if result is None:
        result = run_figure9(time_scale=time_scale, peak_rate=peak_rate, setup=setup)
    elastic = host_seconds(result)
    return CostComparison(
        duration_s=result.duration_s,
        elastic_host_seconds=elastic,
        peak_hosts=result.max_hosts,
        average_hosts=elastic / result.duration_s if result.duration_s else 0.0,
    )
