"""Chaos scenarios: correlated loss, manager failover, partition + heal.

Three scenario families exercise the failure model written down in
RESILIENCE.md, each comparing the delivered notification multiset of a
faulted run against a fault-free baseline of the same deployment —
byte-compared via a canonical digest, so "zero loss, duplicate-free"
is checked on content, not on counters alone:

* :func:`run_rack_loss` — every host of a rack dies at once; passive
  replication (checkpoints + upstream replay) recovers all victim
  slices onto spares.
* :func:`run_manager_crash` — the elasticity manager crashes at a
  chosen phase of a migration or reshard it is executing; a standby is
  promoted via leader election and settles the interrupted decision
  (completed or rolled back — never half-applied).
* :func:`run_partition_heal` — the fabric between the matcher rack and
  the edge host is cut and later healed; retained suffixes are replayed
  and receive-side duplicate suppression keeps the multiset exact, even
  across a live M-slice migration started inside the partition window.

``benchmarks/bench_chaos.py`` runs all three and exports
``BENCH_chaos.json``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
from typing import Dict, List, Optional

from ..cluster import CloudProvider, FailureDetector, FaultPlan, HostSpec
from ..elastic import (
    ManagerFailover,
    PlannedMigration,
    PlannedShardOp,
    ScalingDecision,
    ViolationKind,
)
from ..engine import CheckpointStore, ReliabilityCoordinator
from ..filtering import (
    BruteForceLibrary,
    CostModel,
    ExactBackend,
    Op,
    Predicate,
    PredicateSet,
    ShardedAspeLibrary,
)
from ..pubsub import HubConfig, StreamHub, Subscription
from ..pubsub.source import SourceDriver
from ..sim import Environment
from ..telemetry import Telemetry
from ..workloads import ScaleWorkload

__all__ = [
    "ChaosOutcome",
    "multiset_digest",
    "notification_multiset",
    "phase_spans_tile",
    "run_manager_crash",
    "run_partition_heal",
    "run_rack_loss",
]

SUBSCRIPTIONS = 600
RATE = 40.0
DURATION_S = 30.0
HORIZON_S = 60.0
#: Attribute-0 values cycle over [0, VALUE_SPACE) — see ``_payload``.
VALUE_SPACE = 1000

#: Tolerance for float comparisons when checking span tiling.
_EPS = 1e-9


@dataclasses.dataclass(frozen=True)
class ChaosOutcome:
    """One chaos scenario's verdict against its fault-free baseline."""

    scenario: str
    published: int
    notified: int
    #: Publications never notified (must be 0 for every scenario).
    lost: int
    #: Duplicate notifications suppressed at the connection point.
    duplicates_suppressed: int
    baseline_digest: str
    chaos_digest: str
    #: The headline guarantee: identical delivered multiset.
    multiset_identical: bool
    detail: Dict

    @property
    def zero_loss(self) -> bool:
        return self.lost == 0


def notification_multiset(hub: StreamHub) -> List[tuple]:
    """Canonical delivered multiset, sorted for byte comparison.

    Each entry is ``(pub_id, match_count, subscriber_ids)`` — the ids
    are included whenever the backend reports them (exact matching), so
    the comparison covers the full notification content, not just the
    per-publication count.
    """
    entries = []
    for n in hub.notification_log:
        ids = (
            tuple(sorted(n.subscriber_ids))
            if n.subscriber_ids is not None
            else None
        )
        entries.append((n.pub_id, n.count, ids))
    return sorted(
        entries, key=lambda e: (e[0], e[1], e[2] if e[2] is not None else ())
    )


def multiset_digest(hub: StreamHub) -> str:
    """SHA-256 over the canonical multiset bytes (byte comparison)."""
    payload = repr(notification_multiset(hub)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def phase_spans_tile(tracer, root_name: str) -> bool:
    """Whether every ``root_name`` span's phases tile its interval.

    A root operation span (``migration``/``reshard``) must be exactly
    covered by its consecutive phase child spans — including when the
    operation was aborted mid-phase: the abort closes the open phase at
    the abort instant, so the invariant survives crashes (satellite fix,
    see RESILIENCE.md).
    """
    roots = [s for s in tracer.find(root_name) if s.end is not None]
    if not roots:
        return False
    by_parent: Dict[int, List] = {}
    for span in tracer.spans:
        if span.name.startswith(root_name + ".") and span.parent_id:
            by_parent.setdefault(span.parent_id, []).append(span)
    for root in roots:
        phases = sorted(by_parent.get(root.span_id, []), key=lambda s: s.start)
        if not phases:
            return False
        if abs(phases[0].start - root.start) > _EPS:
            return False
        if phases[-1].end is None or abs(phases[-1].end - root.end) > _EPS:
            return False
        for left, right in zip(phases, phases[1:]):
            if left.end is None or abs(left.end - right.start) > _EPS:
                return False
    return True


# -- shared deployment ---------------------------------------------------------


@dataclasses.dataclass
class _Deployment:
    env: Environment
    cloud: CloudProvider
    hub: StreamHub
    telemetry: Telemetry
    edge: object  # AP + EP host
    m_hosts: List
    sink: object
    spares: List
    #: ``pub_id -> publication payload`` for :func:`_drive`.
    payload_factory: object = None


def _band(low: float, high: float) -> PredicateSet:
    return PredicateSet.of(
        Predicate(0, Op.GE, low), Predicate(0, Op.LE, high)
    )


def _payload(pub_id: int) -> List[float]:
    return [float(pub_id % VALUE_SPACE), 0.0, 0.0, 0.0]


def _deploy(
    m_host_count: int = 2, spare_count: int = 2, sharded: bool = False
) -> _Deployment:
    env = Environment()
    telemetry = Telemetry(env)
    cloud = CloudProvider(env, spec=HostSpec(cores=8), max_hosts=12)
    edge = cloud.provision_now()
    m_hosts = [cloud.provision_now() for _ in range(m_host_count)]
    sink = cloud.provision_now()
    spares = [cloud.provision_now() for _ in range(spare_count)]
    # Exact matching throughout: notification content is then a pure
    # function of the subscription set, so the delivered multiset is
    # byte-identical across baseline and chaos runs.  The sampled
    # backend draws match counts from a stateful RNG and would diverge
    # after any recovery-time re-matching.  ``sharded`` swaps in the
    # key-range-sharded ASPE store (with a fixed-seed encrypted
    # workload) so shard split/merge operations are applicable.
    if sharded:
        backend_factory = lambda index: ExactBackend(ShardedAspeLibrary())
        encrypted = True
    else:
        backend_factory = lambda index: ExactBackend(BruteForceLibrary())
        encrypted = False
    config = HubConfig(
        ap_slices=2,
        m_slices=4,
        ep_slices=2,
        sink_slices=1,
        encrypted=encrypted,
        backend_factory=backend_factory,
        cost_model=CostModel(),
        telemetry=telemetry,
        # The adaptive flow-controlled transport runs every hop through
        # a Channel, whose circuit breaker sheds to the spill queue
        # while the destination is partitioned instead of feeding the
        # fabric events it would only drop.
        net_flush_mode="adaptive",
    )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy(
        ap_hosts=[edge], m_hosts=m_hosts, ep_hosts=[edge], sink_hosts=[sink]
    )
    payload_factory = _payload
    if sharded:
        workload = ScaleWorkload(seed=7)
        for batch in workload.subscription_batches(SUBSCRIPTIONS):
            for sub_id, payload in batch:
                hub.subscribe(Subscription(sub_id, sub_id, payload))
        pubs = workload.publications(int(RATE * DURATION_S) + 8)
        payload_factory = lambda pub_id: pubs[pub_id % len(pubs)]
    else:
        for sub_id in range(SUBSCRIPTIONS):
            low = float((sub_id * 7) % VALUE_SPACE)
            hub.subscribe(
                Subscription(sub_id, sub_id, _band(low, low + 60.0))
            )
    env.run()  # drain subscription propagation before the clock matters
    return _Deployment(
        env, cloud, hub, telemetry, edge, m_hosts, sink, spares,
        payload_factory=payload_factory,
    )


def _drive(deployment: _Deployment) -> SourceDriver:
    source = SourceDriver(deployment.hub)
    source.publish_constant(
        rate_per_s=RATE,
        duration_s=DURATION_S,
        payload_factory=deployment.payload_factory,
    )
    return source


def _baseline_digest(m_host_count: int = 2, sharded: bool = False) -> str:
    deployment = _deploy(m_host_count=m_host_count, sharded=sharded)
    _drive(deployment)
    deployment.env.run(until=HORIZON_S)
    return multiset_digest(deployment.hub)


def _outcome(
    scenario: str,
    deployment: _Deployment,
    source: SourceDriver,
    baseline: str,
    detail: Dict,
    trace_out: Optional[str] = None,
) -> ChaosOutcome:
    if trace_out is not None:
        # The full faulted run as JSONL spans — fault.injected and the
        # recovery.* family next to the regular hop/migration spans.
        deployment.telemetry.tracer.write_jsonl(trace_out)
    hub = deployment.hub
    digest = multiset_digest(hub)
    return ChaosOutcome(
        scenario=scenario,
        published=source.publications_sent,
        notified=hub.notified_publications,
        lost=source.publications_sent - hub.notified_publications,
        duplicates_suppressed=hub.duplicate_notifications,
        baseline_digest=baseline,
        chaos_digest=digest,
        multiset_identical=digest == baseline,
        detail=detail,
    )


# -- scenario 1: correlated rack loss ------------------------------------------


def run_rack_loss(
    rack_size: int = 2,
    fail_at_s: float = 10.0,
    checkpoint_interval_s: float = 4.0,
    seed: int = 0,
    trace_out: Optional[str] = None,
) -> ChaosOutcome:
    """Kill every host of the matcher rack at once; recover onto spares."""
    baseline = _baseline_digest(m_host_count=rack_size)
    d = _deploy(m_host_count=rack_size)
    spare_cycle = itertools.cycle(d.spares)
    coordinator = ReliabilityCoordinator(
        d.hub.runtime,
        interval_s=checkpoint_interval_s,
        replacement_host_fn=lambda: next(spare_cycle),
    )
    coordinator.start(d.hub.engine_slice_ids())
    d.hub.runtime.enable_dead_letters()
    detector = FailureDetector(d.env, detection_delay_s=1.0)
    detector.subscribe(lambda host: coordinator.handle_host_crash(host))
    plan = FaultPlan(
        d.env, cloud=d.cloud, detector=detector, telemetry=d.telemetry,
        seed=seed,
    )
    plan.group("rack", d.m_hosts)
    plan.fail_group_at(fail_at_s, "rack")
    source = _drive(d)
    d.env.run(until=HORIZON_S)
    return _outcome(
        "rack_loss",
        d,
        source,
        baseline,
        detail={
            "rack_size": rack_size,
            "hosts_lost": len(plan.crashed),
            "slices_recovered": len(coordinator.recovery_reports),
            "replayed_events": sum(
                r.replayed_events for r in coordinator.recovery_reports
            ),
            "dead_lettered": sum(
                r.dead_lettered for r in coordinator.recovery_reports
            ),
            "faults": [kind for _, kind, _ in plan.injected],
        },
        trace_out=trace_out,
    )


# -- scenario 2: manager crash during migration / reshard ----------------------


def run_manager_crash(
    during: str = "migration",
    phase: str = "copy",
    kill_inflight: bool = True,
    act_at_s: float = 8.0,
    trace_out: Optional[str] = None,
) -> ChaosOutcome:
    """Crash the manager at a chosen phase of an operation it drives.

    ``during`` selects the protocol (``"migration"`` or ``"reshard"``),
    ``phase`` the protocol phase whose start triggers the crash.  With
    ``kill_inflight`` the crash also strands the operation itself (it
    rolls back via the engine's abort path); otherwise the operation
    survives as an orphan the promoted standby awaits.
    """
    if during not in ("migration", "reshard"):
        raise ValueError(f"unknown protocol {during!r}")
    # Splits need the key-range-sharded store; migrations work on the
    # plain exact backend.
    sharded = during == "reshard"
    baseline = _baseline_digest(sharded=sharded)
    d = _deploy(sharded=sharded)
    store = CheckpointStore()
    failover = ManagerFailover(
        d.hub,
        d.cloud,
        checkpoint_store=store,
        # Decisions are driven explicitly below; park the probe loop.
        probe_interval_s=10 * HORIZON_S,
    )
    engine_hosts = [d.edge] + d.m_hosts + d.spares[:1]
    failover.start_primary(engine_hosts)
    failover.add_standby("standby")
    plan = FaultPlan(d.env, cloud=d.cloud, telemetry=d.telemetry)

    class _CrashTarget:
        """Adapts ``FaultPlan``'s no-arg ``crash()`` to ``kill_inflight``."""

        @staticmethod
        def crash() -> None:
            failover.crash_active(kill_inflight=kill_inflight)

    plan.crash_manager_at_phase(
        d.hub.runtime, _CrashTarget, phase=phase, protocol=during
    )
    m_host = d.m_hosts[0]
    if during == "migration":
        decision = ScalingDecision(
            kind=ViolationKind.LOCAL_OVERLOAD,
            migrations=[
                PlannedMigration(
                    "M:0", m_host.host_id, d.spares[0].host_id
                )
            ],
        )
    else:
        decision = ScalingDecision(
            kind=ViolationKind.LOCAL_OVERLOAD,
            shard_ops=[PlannedShardOp("M:0", "split", m_host.host_id)],
        )
    d.env.call_later(
        act_at_s, lambda: failover.active.execute_decision(decision)
    )
    source = _drive(d)
    d.env.run(until=HORIZON_S)
    standby = failover.active
    root_name = "migration" if during == "migration" else "reshard"
    return _outcome(
        f"manager_crash_{during}",
        d,
        source,
        baseline,
        detail={
            "phase": phase,
            "kill_inflight": kill_inflight,
            "failovers": failover.failovers,
            "outcomes": list(standby.failover_outcomes)
            if standby is not None
            else [],
            "migrations_aborted": d.hub.runtime.migrations_aborted,
            "shard_ops_aborted": d.hub.runtime.shard_ops_aborted,
            "phase_spans_tile": phase_spans_tile(
                d.telemetry.tracer, root_name
            ),
            "faults": [kind for _, kind, _ in plan.injected],
        },
        trace_out=trace_out,
    )


# -- scenario 3: partition + heal ----------------------------------------------


def run_partition_heal(
    migrate: bool = False,
    cut_at_s: float = 8.0,
    heal_at_s: float = 16.0,
    replay_at_s: float = 18.0,
    checkpoint_interval_s: float = 5.0,
    trace_out: Optional[str] = None,
) -> ChaosOutcome:
    """Cut the matcher rack off the edge host, heal, replay, deduplicate.

    With ``migrate`` a live migration of ``M:0`` (within the matcher
    rack) is started *inside* the partition window: its sync phase can
    only drain once the replay delivers the dropped events, proving the
    protocol rides out a partition rather than wedging.
    """
    baseline = _baseline_digest()
    d = _deploy()
    coordinator = ReliabilityCoordinator(
        d.hub.runtime,
        interval_s=checkpoint_interval_s,
        replacement_host_fn=lambda: d.spares[0],
    )
    coordinator.start(d.hub.engine_slice_ids())
    plan = FaultPlan(d.env, cloud=d.cloud, telemetry=d.telemetry)
    plan.group("rack", d.m_hosts)
    plan.group("edge", [d.edge])
    plan.partition_at(cut_at_s, "rack", "edge")
    plan.heal_at(heal_at_s)
    migration_holder: Dict[str, object] = {}
    if migrate:
        d.env.call_later(
            (cut_at_s + heal_at_s) / 2.0,
            lambda: migration_holder.update(
                process=d.hub.runtime.migrate("M:0", d.m_hosts[1])
            ),
        )
    d.env.call_later(replay_at_s, lambda: coordinator.replay_missing())
    source = _drive(d)
    d.env.run(until=HORIZON_S)
    network = d.cloud.network
    return _outcome(
        "partition_heal_migrate" if migrate else "partition_heal",
        d,
        source,
        baseline,
        detail={
            "migrated": migrate
            and d.hub.runtime.placement().get("M:0") == d.m_hosts[1].host_id,
            "partition_drops": network.partition_drops,
            "breaker_trips": d.hub.runtime.transport.breaker_trips_total(),
            "duplicates_suppressed": d.hub.duplicate_notifications,
            "faults": [kind for _, kind, _ in plan.injected],
        },
        trace_out=trace_out,
    )
