"""Figure 6: baseline (static) STREAMHUB performance.

Top plot — maximal sustained throughput of static configurations of 2–12
engine hosts (1:2:1 AP:M:EP host split, 100 K stored subscriptions): the
highest publication rate *before events start accumulating* at the
operator inputs.  The paper measures perfectly linear scaling, reaching
422 publications/s on 12 hosts (42.2 M encrypted matching operations and
422 K notifications per second).

Bottom plot — notification delay percentiles when each configuration is
fed half its maximal throughput (the elasticity policy's target load).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..metrics import BacklogProbe, DelayStats
from .harness import Deployment, ExperimentSetup

__all__ = [
    "BaselineResult",
    "estimate_capacity",
    "is_rate_sustainable",
    "max_throughput",
    "measure_delays",
    "run_figure6",
]


@dataclass
class BaselineResult:
    """One configuration row of Figure 6."""

    hosts: int
    max_throughput: float
    delay_stats: Optional[DelayStats]
    delay_percentiles: List[Tuple[float, float]]

    @property
    def matching_ops_per_s(self) -> float:
        """Encrypted filtering operations per second at max throughput."""
        return self.max_throughput  # × subscriptions, filled by the caller


def estimate_capacity(total_hosts: int, setup: ExperimentSetup) -> float:
    """Analytic throughput bound from the cost model (bottleneck: M).

    Used only to seed the measurement's search interval — the reported
    numbers come from simulation.
    """
    from .harness import host_split

    split = host_split(total_hosts)
    m_cores = split["M"] * setup.host_cores
    per_slice = setup.cost_model.match_cost_s(
        setup.subscriptions // setup.m_slices
    )
    per_publication_core_s = setup.m_slices * per_slice
    return m_cores / per_publication_core_s


def _backlog_queues(deployment: Deployment):
    runtime = deployment.hub.runtime
    queues = {}
    for slice_id in deployment.hub.engine_slice_ids():
        logical = runtime.slices[slice_id]
        queues[slice_id] = (lambda inst: (lambda: inst.queue_length))(logical.active)
    # Backpressure bounds the inboxes but parks the excess in channel
    # spill queues — count that backlog too, or every rate would look
    # sustainable under flow control.
    queues["transport"] = runtime.transport.pending_total
    return queues


def is_rate_sustainable(
    rate: float,
    setup: ExperimentSetup,
    total_hosts: int,
    window_s: float = 20.0,
    warmup_s: float = 3.0,
) -> bool:
    """Simulate ``rate`` on a fresh deployment; True if queues stay bounded."""
    deployment = Deployment(setup)
    deployment.deploy_static_split(total_hosts)
    deployment.preload_subscriptions()
    env = deployment.env
    deployment.source.publish_constant(rate, duration_s=warmup_s + window_s)
    probe = BacklogProbe(_backlog_queues(deployment))

    def sampler():
        while True:
            yield env.timeout(1.0)
            probe.sample(env.now)

    env.process(sampler())
    env.run(until=warmup_s + window_s)
    # Stability bound: two seconds' worth of in-flight fan-out events.
    influx_per_s = rate * (1 + setup.m_slices)
    return probe.is_stable(bound=int(2.0 * influx_per_s))


def max_throughput(
    total_hosts: int,
    setup: Optional[ExperimentSetup] = None,
    iterations: int = 6,
    window_s: float = 20.0,
) -> float:
    """Binary-search the saturation rate of a static configuration."""
    setup = setup or ExperimentSetup()
    estimate = estimate_capacity(total_hosts, setup)
    low, high = estimate * 0.5, estimate * 1.5
    # Widen if the seed interval misjudges the boundary.
    if is_rate_sustainable(high, setup, total_hosts, window_s):
        low, high = high, high * 2.0
    if not is_rate_sustainable(low, setup, total_hosts, window_s):
        low, high = low * 0.25, low
    for _ in range(iterations):
        mid = (low + high) / 2.0
        if is_rate_sustainable(mid, setup, total_hosts, window_s):
            low = mid
        else:
            high = mid
    return low


def measure_delays(
    total_hosts: int,
    rate: float,
    setup: Optional[ExperimentSetup] = None,
    duration_s: float = 30.0,
    warmup_s: float = 5.0,
    percentiles: Sequence[float] = (0.0, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0),
) -> Tuple[Optional[DelayStats], List[Tuple[float, float]]]:
    """Delay statistics at ``rate`` (Figure 6 bottom uses half of max)."""
    deployment = Deployment(setup or ExperimentSetup())
    deployment.deploy_static_split(total_hosts)
    deployment.preload_subscriptions()
    deployment.source.publish_constant(rate, duration_s=warmup_s + duration_s)
    deployment.env.run(until=warmup_s + duration_s + 5.0)
    tracker = deployment.hub.delay_tracker
    stats = tracker.stats(since=warmup_s)
    stack = tracker.percentile_stack(percentiles, since=warmup_s)
    return stats, stack


def run_figure6(
    host_counts: Sequence[int] = (2, 4, 6, 8, 10, 12),
    setup: Optional[ExperimentSetup] = None,
    search_iterations: int = 6,
    throughput_window_s: float = 20.0,
    delay_duration_s: float = 30.0,
) -> List[BaselineResult]:
    """Both Figure 6 panels for each static configuration."""
    setup = setup or ExperimentSetup()
    results = []
    for hosts in host_counts:
        throughput = max_throughput(
            hosts, setup, iterations=search_iterations, window_s=throughput_window_s
        )
        stats, stack = measure_delays(
            hosts, throughput / 2.0, setup, duration_s=delay_duration_s
        )
        results.append(
            BaselineResult(
                hosts=hosts,
                max_throughput=throughput,
                delay_stats=stats,
                delay_percentiles=stack,
            )
        )
    return results
