"""Ablation studies of the enforcer's design choices (DESIGN.md §4).

The paper motivates three design decisions that these ablations quantify:

* **Slice selection** — the subset-sum selection minimizing state transfer
  (vs. greedily moving the hottest slices, vs. arbitrary order).  Measured
  by the total bytes of state moved and the delay disturbance.
* **Grace period** — the ≥30 s settling time between enforcement actions
  (vs. a trigger-happy enforcer).  Measured by the number of scaling
  actions and migrations (oscillation).
* **Target utilization** — the 50% ideal point (vs. packing hosts hotter
  or cooler).  Measured by consumed host-seconds (the cloud bill) and
  delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..elastic import (
    ElasticityEnforcer,
    ElasticityPolicy,
    select_slices,
    select_slices_arbitrary,
    select_slices_greedy_cpu,
)
from ..workloads import trapezoid
from .elastic import ElasticRunResult, run_elastic
from .harness import ExperimentSetup

__all__ = [
    "AblationRow",
    "run_selection_ablation",
    "run_grace_period_ablation",
    "run_target_utilization_ablation",
]

SELECTORS: Dict[str, Callable] = {
    "min-memory (paper)": select_slices,
    "greedy-cpu": select_slices_greedy_cpu,
    "arbitrary": select_slices_arbitrary,
}


@dataclass
class AblationRow:
    """One variant of an ablation, with its headline metrics."""

    variant: str
    migrations: int
    state_moved_mb: float
    decisions: int
    mean_delay_s: float
    max_delay_s: float
    max_hosts: int

    @classmethod
    def from_result(cls, variant: str, result: ElasticRunResult) -> "AblationRow":
        delays = [w.mean for w in result.delay_windows]
        return cls(
            variant=variant,
            migrations=len(result.migration_reports),
            state_moved_mb=sum(r.state_bytes for r in result.migration_reports)
            / 1e6,
            decisions=len(result.decisions),
            mean_delay_s=sum(delays) / len(delays) if delays else 0.0,
            max_delay_s=max((w.maximum for w in result.delay_windows), default=0.0),
            max_hosts=result.max_hosts,
        )


def _ablation_profile(time_scale: float, peak: float = 250.0):
    ramp = 900.0 * time_scale
    plateau = 450.0 * time_scale
    return (
        trapezoid(ramp_up_s=ramp, plateau_s=plateau, ramp_down_s=ramp, peak=peak),
        2 * ramp + plateau + 200.0 * time_scale,
    )


def _ablation_setup() -> ExperimentSetup:
    """A half-size workload (50 K subscriptions) keeping runs affordable;
    one host then saturates at ≈ 140 publications/s and the 250 pub/s peak
    (≈ 14.5 busy cores) drives the system to 4-5 hosts."""
    return ExperimentSetup(subscriptions=50_000)


def _selection_setup() -> ExperimentSetup:
    """Workload where the selection strategy actually matters.

    With the default cost model the M slices carry nearly all the CPU, so
    every strategy is forced to move the same state-heavy slices.  Here the
    AP events are deliberately expensive (heavy protocol processing), so
    stateless AP slices carry CPU comparable to the M slices — min-memory
    selection can shed load by moving cheap AP slices where greedy-by-CPU
    grabs the state-heavy M slices.
    """
    from ..filtering import CostModel

    return ExperimentSetup(
        subscriptions=50_000,
        cost_model=CostModel(ap_event_s=8e-3, slice_base_bytes=2 * 1024 * 1024),
    )


def run_selection_ablation(
    time_scale: float = 0.15,
    setup: Optional[ExperimentSetup] = None,
) -> List[AblationRow]:
    """Compare slice-selection strategies under the same synthetic ramp."""
    setup = setup or _selection_setup()
    profile, duration = _ablation_profile(time_scale)
    rows = []
    for name, selector in SELECTORS.items():
        policy = ElasticityPolicy()
        enforcer = ElasticityEnforcer(
            policy,
            host_cores=setup.host_cores,
            selector=selector,
        )
        result = run_elastic(
            profile, duration, setup=setup, policy=policy, enforcer=enforcer
        )
        rows.append(AblationRow.from_result(name, result))
    return rows


def run_grace_period_ablation(
    grace_periods_s: Sequence[float] = (5.0, 30.0, 90.0),
    time_scale: float = 0.15,
    setup: Optional[ExperimentSetup] = None,
) -> List[AblationRow]:
    """Vary the settling time between enforcement actions."""
    setup = setup or _ablation_setup()
    profile, duration = _ablation_profile(time_scale)
    rows = []
    for grace in grace_periods_s:
        policy = ElasticityPolicy(grace_period_s=grace)
        result = run_elastic(profile, duration, setup=setup, policy=policy)
        rows.append(AblationRow.from_result(f"grace={grace:g}s", result))
    return rows


def run_target_utilization_ablation(
    targets: Sequence[float] = (0.35, 0.50, 0.65),
    time_scale: float = 0.15,
    setup: Optional[ExperimentSetup] = None,
) -> List[AblationRow]:
    """Vary the ideal average utilization around the paper's 50%."""
    setup = setup or _ablation_setup()
    profile, duration = _ablation_profile(time_scale)
    rows = []
    for target in targets:
        policy = ElasticityPolicy(
            target_utilization=target,
            scale_in_threshold=target * 0.6,
            scale_out_threshold=min(0.95, target + 0.2),
            local_overload_threshold=min(0.99, target + 0.35),
        )
        result = run_elastic(profile, duration, setup=setup, policy=policy)
        rows.append(AblationRow.from_result(f"target={int(target * 100)}%", result))
    return rows
