"""Table I and Figure 7: operator slice migration performance.

Table I measures, over 25 migrations per operator, the time to migrate a
slice of each operator under a constant flow of 100 publications/s:
AP (stateless) ≈ 232 ± 31 ms, EP (small transient state) ≈ 275 ± 52 ms,
M with 12.5 K stored subscriptions per slice ≈ 1 497 ± 354 ms and with
50 K ≈ 2 533 ± 1 557 ms.  The configuration uses 4 AP, 8 M and 4 EP
slices on 2 + 4 + 2 hosts.

Figure 7 shows the notification delay over time while consecutively
migrating two AP slices, two M slices and one EP slice: the delay rises
from ≈ 500 ms steady state to below two seconds around the M migrations.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

from ..metrics import WindowStats, WindowedSeries
from .harness import Deployment, ExperimentSetup

__all__ = [
    "MigrationTimingRow",
    "Figure7Result",
    "migration_setup",
    "run_table1",
    "run_figure7",
]


def migration_setup(subscriptions: int = 100_000) -> ExperimentSetup:
    """The migration experiments' slice/host configuration (paper §VI-D)."""
    return ExperimentSetup(
        subscriptions=subscriptions,
        ap_slices=4,
        m_slices=8,
        ep_slices=4,
    )


@dataclass
class MigrationTimingRow:
    """One Table I row."""

    operator: str
    subscriptions_per_slice: int
    samples_ms: List[float]

    @property
    def average_ms(self) -> float:
        return sum(self.samples_ms) / len(self.samples_ms)

    @property
    def std_ms(self) -> float:
        mean = self.average_ms
        return math.sqrt(
            sum((s - mean) ** 2 for s in self.samples_ms) / len(self.samples_ms)
        )


def _safe_rate(requested: float, setup: ExperimentSetup) -> float:
    """Cap the flow below saturation for the migration deployment.

    Table I nominally uses 100 publications/s; with 50 K subscriptions per
    M slice that rate would exceed the 4 M hosts' filtering capacity (the
    paper does not state how the flow was adjusted for the 500 K workload),
    so we cap it at 45% of the analytic capacity — the same "slightly less
    than half the maximal throughput" regime the paper describes.
    """
    per_slice = setup.subscriptions // setup.m_slices
    per_publication_core_s = setup.m_slices * setup.cost_model.match_cost_s(per_slice)
    capacity = 4 * setup.host_cores / per_publication_core_s  # 4 M hosts
    return min(requested, 0.45 * capacity)


def _timed_migrations(
    deployment: Deployment,
    operator: str,
    count: int,
    rate_per_s: float,
    settle_s: float,
    seed: int,
) -> List[float]:
    """Run ``count`` random migrations of ``operator`` under constant flow."""
    from ..pubsub.source import SourceDriver

    env = deployment.env
    runtime = deployment.hub.runtime
    rng = random.Random(seed)
    durations: List[float] = []

    def migrate_loop():
        yield env.timeout(settle_s)  # let the flow reach steady state
        slice_ids = runtime.slice_ids(operator)
        for _ in range(count):
            slice_id = rng.choice(slice_ids)
            current = runtime.host_of(slice_id)
            others = [h for h in deployment.engine_hosts if h is not current]
            destination = rng.choice(others)
            report = yield runtime.migrate(slice_id, destination)
            durations.append(report.duration_s * 1000.0)
            yield env.timeout(settle_s)

    driver = env.process(migrate_loop())
    horizon = settle_s * (count + 2) + count * 10.0
    source = SourceDriver(deployment.hub, seed=seed, poisson=True)
    source.publish_constant(rate_per_s, duration_s=horizon)
    env.run(until=driver)
    return durations


def run_table1(
    migrations_per_operator: int = 25,
    rate_per_s: float = 100.0,
    subscriptions_per_m_slice: Tuple[int, ...] = (12_500, 50_000),
    settle_s: float = 2.0,
    seed: int = 11,
) -> List[MigrationTimingRow]:
    """All Table I rows (AP, M per workload size, EP)."""
    rows: List[MigrationTimingRow] = []
    m_slices = migration_setup().m_slices

    def fresh(subs: int) -> Tuple[Deployment, float]:
        setup = migration_setup(subs)
        deployment = Deployment(setup)
        deployment.deploy_groups(ap_hosts=2, m_hosts=4, ep_hosts=2)
        deployment.preload_subscriptions()
        return deployment, _safe_rate(rate_per_s, setup)

    base_subs = subscriptions_per_m_slice[0] * m_slices
    deployment, rate = fresh(base_subs)
    rows.append(
        MigrationTimingRow(
            operator="AP",
            subscriptions_per_slice=0,
            samples_ms=_timed_migrations(
                deployment, deployment.hub.AP, migrations_per_operator,
                rate, settle_s, seed,
            ),
        )
    )
    for per_slice in subscriptions_per_m_slice:
        deployment, rate = fresh(per_slice * m_slices)
        rows.append(
            MigrationTimingRow(
                operator=f"M ({per_slice / 1000:g} K)",
                subscriptions_per_slice=per_slice,
                samples_ms=_timed_migrations(
                    deployment, deployment.hub.M, migrations_per_operator,
                    rate, settle_s, seed + per_slice,
                ),
            )
        )
    deployment, rate = fresh(base_subs)
    rows.append(
        MigrationTimingRow(
            operator="EP",
            subscriptions_per_slice=0,
            samples_ms=_timed_migrations(
                deployment, deployment.hub.EP, migrations_per_operator,
                rate, settle_s, seed + 1,
            ),
        )
    )
    return rows


@dataclass
class Figure7Result:
    """Delay-over-time series with migration markers."""

    delay_windows: List[WindowStats]
    #: (time, slice id) for each migration performed.
    migration_marks: List[Tuple[float, str]]
    steady_state_mean_s: float
    peak_delay_s: float


def run_figure7(
    rate_per_s: float = 100.0,
    subscriptions: int = 100_000,
    window_s: float = 2.0,
    seed: int = 13,
) -> Figure7Result:
    """Delay impact of consecutive AP, M and EP migrations."""
    deployment = Deployment(migration_setup(subscriptions))
    deployment.deploy_groups(ap_hosts=2, m_hosts=4, ep_hosts=2)
    deployment.preload_subscriptions()
    env = deployment.env
    runtime = deployment.hub.runtime
    rng = random.Random(seed)
    marks: List[Tuple[float, str]] = []

    def pick_destination(slice_id):
        current = runtime.host_of(slice_id)
        return rng.choice([h for h in deployment.engine_hosts if h is not current])

    def migration_plan():
        # Two AP migrations, two M migrations, one EP migration, spaced out
        # (paper Figure 7's schedule).
        yield env.timeout(30.0)
        for operator, count in ((deployment.hub.AP, 2), (deployment.hub.M, 2),
                                (deployment.hub.EP, 1)):
            for _ in range(count):
                slice_id = rng.choice(runtime.slice_ids(operator))
                marks.append((env.now, slice_id))
                yield runtime.migrate(slice_id, pick_destination(slice_id))
                yield env.timeout(5.0)
            yield env.timeout(15.0)

    duration = 140.0
    deployment.source.publish_constant(rate_per_s, duration_s=duration)
    env.process(migration_plan())
    env.run(until=duration + 10.0)

    series = WindowedSeries(window_s=window_s)
    for sample in deployment.hub.delay_tracker.samples:
        series.add(sample.delivered_at, sample.delay)
    windows = series.windows()
    steady = [w.mean for w in windows if w.window_start < 28.0]
    steady_mean = sum(steady) / len(steady) if steady else 0.0
    peak = max((w.maximum for w in windows), default=0.0)
    return Figure7Result(
        delay_windows=windows,
        migration_marks=marks,
        steady_state_mean_s=steady_mean,
        peak_delay_s=peak,
    )
