"""Shared deployment harness for the paper's experiments.

Builds the simulated cluster (the paper's 30-host / 240-core private
cloud), deploys a STREAMHUB instance with the evaluation's slice counts
(8 AP / 16 M / 8 EP, §VI-A), preloads the subscription workload, and wires
sources and sinks.  Each experiment module composes these pieces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cluster import CloudProvider, Host, HostSpec
from ..filtering import CostModel
from ..pubsub import HubConfig, StreamHub, Subscription
from ..pubsub.source import SourceDriver
from ..sim import Environment
from ..transport import TransportConfig

__all__ = ["ExperimentSetup", "Deployment", "host_split"]


@dataclass
class ExperimentSetup:
    """Knobs shared by all experiments (paper defaults)."""

    subscriptions: int = 100_000
    matching_rate: float = 0.01
    ap_slices: int = 8
    m_slices: int = 16
    ep_slices: int = 8
    sink_slices: int = 4
    parallelism: int = 8
    host_cores: int = 8
    max_hosts: int = 30
    provisioning_delay_s: float = 2.0
    cost_model: CostModel = field(default_factory=CostModel)
    #: Per-sender channel flush interval (StreamMine3G micro-batching);
    #: dominates the steady-state notification delay (DESIGN.md §5).
    #: Plumbs into ``HubConfig.net_flush_s`` — the hub configuration is
    #: the single source of truth for transport knobs, and the deployment
    #: builds the fabric from it.
    batch_flush_s: float = 0.10
    #: Channel flush policy (DESIGN.md §9).  ``None`` derives the
    #: pre-transport behaviour from ``batch_flush_s``: ``fixed`` fabric
    #: epochs when positive, ``eager`` when zero.  Set ``adaptive`` for
    #: per-channel latency-bounded flush with ``batch_flush_s`` as the
    #: delay budget.
    flush_mode: Optional[str] = None
    #: Credit-based backpressure on every transport channel.  Defaults
    #: from ``REPRO_NET_BACKPRESSURE`` so the environment flips the
    #: experiments too.
    backpressure: bool = field(
        default_factory=lambda: TransportConfig.from_env().backpressure
    )
    #: Send credits per channel when backpressure is on.  From
    #: ``REPRO_NET_CREDIT_WINDOW``.
    credit_window: int = field(
        default_factory=lambda: TransportConfig.from_env().credit_window
    )
    seed: int = 1
    #: Optional :class:`repro.telemetry.Telemetry` bundle; when set, every
    #: experiment run records spans and metrics (see OBSERVABILITY.md).
    telemetry: Optional[object] = None

    def hub_config(self) -> HubConfig:
        flush_mode = self.flush_mode
        if flush_mode is None:
            flush_mode = "fixed" if self.batch_flush_s > 0.0 else "eager"
        return HubConfig.sampled(
            self.matching_rate,
            ap_slices=self.ap_slices,
            m_slices=self.m_slices,
            ep_slices=self.ep_slices,
            sink_slices=self.sink_slices,
            parallelism=self.parallelism,
            cost_model=self.cost_model,
            telemetry=self.telemetry,
            net_flush_mode=flush_mode,
            net_flush_s=self.batch_flush_s,
            net_backpressure=self.backpressure,
            net_credit_window=self.credit_window,
        )


def host_split(total_hosts: int) -> Dict[str, int]:
    """The paper's static host allocation: M gets twice AP's and EP's share.

    With 8 hosts: 2 AP, 4 M, 2 EP; with 2 hosts: AP and EP share one host
    while M gets the other (§VI-C).
    """
    if total_hosts < 2:
        raise ValueError("the static split needs at least 2 hosts")
    m_hosts = max(1, total_hosts // 2)
    rest = total_hosts - m_hosts
    ap_hosts = max(1, rest // 2)
    ep_hosts = max(1, rest - ap_hosts)
    return {"AP": ap_hosts, "M": m_hosts, "EP": ep_hosts}


class Deployment:
    """A ready-to-run hub on a simulated cluster."""

    def __init__(self, setup: Optional[ExperimentSetup] = None):
        self.setup = setup or ExperimentSetup()
        self.env = Environment()
        from ..cluster import Network

        self.cloud = CloudProvider(
            self.env,
            # The transport layer programs the fabric's flush epochs from
            # the hub configuration (single source of truth) when the hub
            # is constructed below.
            network=Network(self.env),
            spec=HostSpec(cores=self.setup.host_cores),
            max_hosts=self.setup.max_hosts + 2,  # + sink/source hosts
            provisioning_delay_s=self.setup.provisioning_delay_s,
        )
        self.hub = StreamHub(self.env, self.cloud.network, self.setup.hub_config())
        self.engine_hosts: List[Host] = []
        self.sink_host: Optional[Host] = None
        self.source = SourceDriver(self.hub, seed=self.setup.seed)

    # -- deployment shapes -----------------------------------------------------

    def deploy_static_split(self, total_hosts: int) -> None:
        """The baseline experiments' 1:2:1 operator/host allocation."""
        split = host_split(total_hosts)
        if total_hosts == 2:
            # One host runs all AP and EP slices, the other all M slices.
            shared = self.cloud.provision_now()
            m_host = self.cloud.provision_now()
            self.engine_hosts = [shared, m_host]
            self.hub.runtime.deploy_operator(self.hub.AP, [shared])
            self.hub.runtime.deploy_operator(self.hub.M, [m_host])
            self.hub.runtime.deploy_operator(self.hub.EP, [shared])
        else:
            ap = [self.cloud.provision_now() for _ in range(split["AP"])]
            m = [self.cloud.provision_now() for _ in range(split["M"])]
            ep = [self.cloud.provision_now() for _ in range(split["EP"])]
            self.engine_hosts = ap + m + ep
            self.hub.runtime.deploy_operator(self.hub.AP, ap)
            self.hub.runtime.deploy_operator(self.hub.M, m)
            self.hub.runtime.deploy_operator(self.hub.EP, ep)
        self._deploy_sink()

    def deploy_single_host(self) -> None:
        """Elasticity experiments start with one host running all slices."""
        host = self.cloud.provision_now()
        self.engine_hosts = [host]
        for operator in (self.hub.AP, self.hub.M, self.hub.EP):
            self.hub.runtime.deploy_operator(operator, [host])
        self._deploy_sink()

    def deploy_groups(self, ap_hosts: int, m_hosts: int, ep_hosts: int) -> None:
        """Explicit per-operator host groups (migration experiments)."""
        ap = [self.cloud.provision_now() for _ in range(ap_hosts)]
        m = [self.cloud.provision_now() for _ in range(m_hosts)]
        ep = [self.cloud.provision_now() for _ in range(ep_hosts)]
        self.engine_hosts = ap + m + ep
        self.hub.runtime.deploy_operator(self.hub.AP, ap)
        self.hub.runtime.deploy_operator(self.hub.M, m)
        self.hub.runtime.deploy_operator(self.hub.EP, ep)
        self._deploy_sink()

    def _deploy_sink(self) -> None:
        self.sink_host = self.cloud.provision_now()
        self.hub.runtime.deploy_operator(self.hub.SINK, [self.sink_host])

    # -- workload -----------------------------------------------------------------

    def preload_subscriptions(self, count: Optional[int] = None) -> None:
        """Install the stored-subscription state directly into the M slices.

        The storage phase precedes every measurement in the paper and is
        itself unmeasured, so experiments skip the pipeline and place each
        subscription in the slice the AP's modulo hashing would pick.
        """
        count = count if count is not None else self.setup.subscriptions
        m_slices = self.setup.m_slices
        handlers = [
            self.hub.runtime.handler_of(f"{self.hub.M}:{i}") for i in range(m_slices)
        ]
        for sub_id in range(count):
            handlers[sub_id % m_slices].preload(
                Subscription(sub_id=sub_id, subscriber=sub_id, filter_payload=None)
            )

    def stored_subscriptions(self) -> int:
        return sum(
            self.hub.runtime.handler_of(f"{self.hub.M}:{i}").backend.subscription_count()
            for i in range(self.setup.m_slices)
        )

    def fresh_host(self) -> Host:
        """Provision an extra host immediately (migration targets)."""
        host = self.cloud.provision_now()
        self.engine_hosts.append(host)
        return host
