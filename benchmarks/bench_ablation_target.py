"""Ablation: the target (ideal) CPU utilization.

The paper packs hosts to a 50% target — headroom to absorb load changes
between enforcement rounds, at the cost of running more hosts.  This
ablation sweeps the target and reports the trade-off between host usage
(the cloud bill) and delay behaviour.
"""

from repro.experiments import run_target_utilization_ablation
from repro.metrics import format_table

from conftest import run_once


def test_target_utilization_ablation(benchmark, report):
    rows = run_once(
        benchmark, lambda: run_target_utilization_ablation(targets=(0.35, 0.50, 0.65))
    )

    report()
    report("Ablation — target utilization (paper: 50%)")
    report(
        format_table(
            ["variant", "max hosts", "migrations", "mean delay ms", "max delay ms"],
            [
                [
                    r.variant,
                    r.max_hosts,
                    r.migrations,
                    round(r.mean_delay_s * 1000),
                    round(r.max_delay_s * 1000),
                ]
                for r in rows
            ],
        )
    )

    by_variant = {r.variant: r for r in rows}
    cool, paper, hot = (
        by_variant["target=35%"],
        by_variant["target=50%"],
        by_variant["target=65%"],
    )
    # Cooler targets buy headroom with more hosts; hotter targets pack
    # tighter.  (Weak inequalities: discrete host counts.)
    assert cool.max_hosts >= paper.max_hosts >= hot.max_hosts
    assert cool.max_hosts > hot.max_hosts
    for r in rows:
        assert r.max_hosts >= 2
