"""Wall-clock benchmark of the full AP → M → EP pipeline (simulator speed).

Measures how fast the *simulator* moves events through a deployed hub —
not simulated throughput, but host wall-clock events per second — with
event-plane batching off (every batch limit 1, the seed's per-event path)
and on (AP, M and EP coalesce up to ``BATCH_LIMIT`` queued events and
micro-batch their emissions per destination slice).

A publication burst is injected while the clients are unthrottled, so the
operator inboxes run deep and coalescing actually engages.  The batched
run must:

* produce the bit-identical notification log (pub ids, match counts and
  subscriber sets in identical delivery order), and
* move events at >= 2x the per-event path's wall-clock rate.

Results are exported to ``BENCH_pipeline.json`` (override the path with
``REPRO_BENCH_PIPELINE_OUT``) for the CI workflow to archive.
"""

import os
import random
import time

from repro.cluster import CloudProvider, HostSpec
from repro.filtering import (
    AspeCipher,
    AspeKey,
    AspeLibrary,
    ExactBackend,
    Op,
    Predicate,
    PredicateSet,
)
from repro.metrics import write_json
from repro.pubsub import HubConfig, Publication, StreamHub, Subscription
from repro.sim import Environment

from conftest import memory_snapshot, run_once

SUBSCRIPTIONS = 120
PUBLICATIONS = 2_000
BATCH_LIMIT = 128
ENGINE_HOSTS = 2
RESULTS = {}

#: Both configurations replay the exact same ciphertexts, so matching
#: decisions are bit-identical even at tolerance boundaries.
_WORKLOAD = None


def encrypted_workload():
    global _WORKLOAD
    if _WORKLOAD is None:
        cipher = AspeCipher(
            AspeKey.generate(4, rng=random.Random(11)), rng=random.Random(12)
        )
        subs = [
            cipher.encrypt_subscription(band(0, low, low + 80.0))
            for low in (float((sub_id % 6) * 50) for sub_id in range(SUBSCRIPTIONS))
        ]
        pubs = [
            cipher.encrypt_publication([float(pub_id % 300), 0.0, 0.0, 0.0])
            for pub_id in range(PUBLICATIONS)
        ]
        _WORKLOAD = (subs, pubs)
    return _WORKLOAD


def build_hub(batched: bool, telemetry=None):
    env = Environment()
    cloud = CloudProvider(env, spec=HostSpec(cores=8), max_hosts=8)
    hosts = [cloud.provision_now() for _ in range(ENGINE_HOSTS + 1)]
    limits = (
        dict(
            ap_batch_limit=BATCH_LIMIT,
            matcher_batch_limit=BATCH_LIMIT,
            ep_batch_limit=BATCH_LIMIT,
        )
        if batched
        else {}
    )
    config = HubConfig(
        ap_slices=2,
        m_slices=4,
        ep_slices=2,
        sink_slices=1,
        encrypted=False,
        backend_factory=lambda index: ExactBackend(AspeLibrary()),
        telemetry=telemetry,
        **limits,
    )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy_all_on(hosts[:ENGINE_HOSTS], [hosts[ENGINE_HOSTS]])
    return env, hub


def band(attribute, low, high):
    return PredicateSet.of(
        Predicate(attribute, Op.GE, low), Predicate(attribute, Op.LE, high)
    )


def run_pipeline(batched: bool, telemetry=None):
    encrypted_subs, encrypted_pubs = encrypted_workload()
    env, hub = build_hub(batched, telemetry=telemetry)
    for sub_id, encrypted in enumerate(encrypted_subs):
        hub.subscribe(Subscription(sub_id, 1000 + sub_id, encrypted))
    env.run()
    burst_start = env.now
    for pub_id, encrypted in enumerate(encrypted_pubs):
        hub.publish(Publication(pub_id, payload=encrypted, published_at=env.now))
    wall_start = time.perf_counter()
    env.run()
    wall_s = time.perf_counter() - wall_start
    processed = sum(
        hub.runtime.slice_stats(slice_id)["processed"]
        for slice_id in hub.engine_slice_ids()
    )
    return {
        "wall_s": wall_s,
        "processed_events": processed,
        "wall_events_per_s": processed / wall_s,
        "sim_duration_s": env.now - burst_start,
        "sim_publications_per_s": PUBLICATIONS / (env.now - burst_start),
        # Sorted: batching shifts cross-channel delivery interleaving (which
        # was never ordered), but the notification multiset must be
        # bit-identical and exactly-once.
        "notifications": sorted(
            (n.pub_id, n.count, tuple(sorted(n.subscriber_ids)))
            for n in hub.notification_log
        ),
    }


def test_pipeline_batched_vs_per_event(benchmark, report):
    per_event = run_pipeline(batched=False)
    batched = run_once(benchmark, lambda: run_pipeline(batched=True))

    # Exactly-once, bit-identical delivery: same notifications, same order.
    assert batched["notifications"] == per_event["notifications"]
    assert len(batched["notifications"]) == PUBLICATIONS
    # Batching collapses transfers and calls, never the event stream.
    assert batched["processed_events"] == per_event["processed_events"]

    speedup = batched["wall_events_per_s"] / per_event["wall_events_per_s"]
    for name, run in (("per_event", per_event), ("batched", batched)):
        RESULTS[name] = {
            key: value for key, value in run.items() if key != "notifications"
        }
    RESULTS["wall_speedup"] = speedup

    report()
    report(
        f"Pipeline wall-clock ({PUBLICATIONS} publications x "
        f"{SUBSCRIPTIONS} subscriptions, batch limit {BATCH_LIMIT})"
    )
    report(
        f"  per-event path  : {per_event['wall_events_per_s']:12,.0f} events/s "
        f"({per_event['wall_s'] * 1000:8.1f} ms)"
    )
    report(
        f"  batched path    : {batched['wall_events_per_s']:12,.0f} events/s "
        f"({batched['wall_s'] * 1000:8.1f} ms)"
    )
    report(f"  speedup         : {speedup:8.2f}x (acceptance floor: 2x)")

    path = os.environ.get("REPRO_BENCH_PIPELINE_OUT", "BENCH_pipeline.json")
    write_json(
        path,
        {
            "workload": {
                "subscriptions": SUBSCRIPTIONS,
                "publications": PUBLICATIONS,
                "batch_limit": BATCH_LIMIT,
                "engine_hosts": ENGINE_HOSTS,
            },
            "results": dict(RESULTS),
            "memory": memory_snapshot(),
        },
    )
    report(f"  exported        : {path}")
    assert speedup >= 2.0


def test_pipeline_telemetry_artifacts(report):
    """A telemetry-enabled run observes without perturbing, and its trace
    and metric scrape are exported for the CI workflow to archive."""
    from repro.telemetry import Telemetry, write_prometheus

    baseline = run_pipeline(batched=True)
    telemetry = Telemetry()
    traced = run_pipeline(batched=True, telemetry=telemetry)

    # Pure observer: the notification log is bit-identical with tracing on.
    assert traced["notifications"] == baseline["notifications"]
    assert traced["processed_events"] == baseline["processed_events"]

    # The registry saw the whole pipeline.
    assert telemetry.events_processed.labels(operator="M").value > 0
    assert telemetry.batches_coalesced.labels(operator="M").value > 0
    assert telemetry.notification_delay.count == len(traced["notifications"])
    hop_names = {span.name for span in telemetry.tracer.spans}
    assert {"hop.AP", "hop.M", "hop.EP", "hop.SINK"} <= hop_names

    trace_path = os.environ.get("REPRO_BENCH_TRACE_OUT", "BENCH_trace.jsonl")
    telemetry.tracer.write_jsonl(trace_path)
    metrics_path = os.environ.get("REPRO_BENCH_METRICS_OUT", "BENCH_metrics.prom")
    write_prometheus(metrics_path, telemetry.metrics)

    report()
    report("Telemetry-enabled pipeline run (pure-observer check)")
    report(f"  spans recorded  : {len(telemetry.tracer.spans):8d}")
    report(f"  mean delay      : {telemetry.notification_delay.mean * 1000:8.1f} ms")
    report(f"  exported        : {trace_path}, {metrics_path}")


def test_pipeline_disabled_telemetry_overhead(report):
    """A constructed-but-disabled bundle must cost < 3% wall-clock.

    The disabled path is a single ``is None`` / ``tracer.enabled`` test at
    every instrumented call site; interleaved best-of-N runs keep host
    noise from drowning the comparison.
    """
    from repro.telemetry import Telemetry

    rounds = 3
    run_pipeline(batched=True)  # warm caches and the encrypted workload
    bare_s = []
    disabled_s = []
    for _ in range(rounds):
        bare_s.append(run_pipeline(batched=True)["wall_s"])
        disabled_s.append(
            run_pipeline(batched=True, telemetry=Telemetry.disabled())["wall_s"]
        )
    bare = min(bare_s)
    disabled = min(disabled_s)
    overhead = disabled / bare - 1.0

    report()
    report("Disabled-telemetry overhead (best of "
           f"{rounds} interleaved runs)")
    report(f"  no telemetry    : {bare * 1000:8.1f} ms")
    report(f"  disabled bundle : {disabled * 1000:8.1f} ms")
    report(f"  overhead        : {overhead * 100:+8.2f}% (ceiling: +3%)")
    assert overhead < 0.03
