"""Ablation: backlog-aware scale-out sizing (extension over the paper).

The paper's enforcer sizes scale-outs from measured CPU utilization only.
Under saturation the measurement is capped at host capacity, so a load
step is answered by several successive partial scale-outs (one per grace
period).  Our extension folds the probes' queue lengths into the demand
estimate (``SliceProbe.demand_cores``), letting a single decision reach
the needed host count.  The worst-case delay is similar for both (it is
dominated by the control latency before the *first* decision plus the
migration sync); what backlog-awareness buys is convergence: adequate
capacity one grace period earlier, with fewer scaling rounds.
"""

from repro.elastic import ElasticityPolicy
from repro.experiments import run_elastic
from repro.experiments.ablations import AblationRow, _ablation_setup
from repro.metrics import format_table
from repro.workloads import staircase

from conftest import run_once


def _run(backlog_aware: bool):
    # A load step to 210 pub/s against a 1-host cold start (a single host
    # saturates at ≈ 140 pub/s with the 50 K-subscription workload).
    profile = staircase([(0.0, 210.0), (300.0, 0.0)])
    policy = ElasticityPolicy(backlog_aware_scaling=backlog_aware)
    result = run_elastic(profile, 360.0, setup=_ablation_setup(), policy=policy)
    name = "backlog-aware (ours)" if backlog_aware else "cpu-only (paper)"
    scale_outs = [d for d in result.decisions if d.kind == "global_overload"]
    last_scale_out = max((d.time for d in scale_outs), default=float("inf"))
    return AblationRow.from_result(name, result), scale_outs, last_scale_out


def test_backlog_aware_scaling_ablation(benchmark, report):
    (ours, ours_outs, ours_last), (paper, paper_outs, paper_last) = run_once(
        benchmark, lambda: [_run(True), _run(False)]
    )

    report()
    report("Ablation — scale-out sizing under a load step (0 → 210 pub/s)")
    report(
        format_table(
            ["variant", "scale-out rounds", "capacity reached at",
             "migrations", "mean delay ms", "max hosts"],
            [
                [
                    row.variant,
                    len(outs),
                    f"{last:.0f}s",
                    row.migrations,
                    round(row.mean_delay_s * 1000),
                    row.max_hosts,
                ]
                for row, outs, last in (
                    (ours, ours_outs, ours_last),
                    (paper, paper_outs, paper_last),
                )
            ],
        )
    )

    # Both variants eventually provision enough capacity.
    assert ours.max_hosts >= 3 and paper.max_hosts >= 3
    # Backlog-awareness converges in fewer scale-out rounds, finishing
    # (at least one grace period) earlier.
    assert len(ours_outs) < len(paper_outs)
    assert ours_last < paper_last
