"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints a
``paper=`` vs ``measured=`` report (bypassing pytest's capture so it shows
up in the tee'd output), and asserts the qualitative *shape* the paper
claims — who wins, by roughly what factor, where crossovers fall.

Environment knobs:

* ``REPRO_BENCH_SCALE`` (float, default 1.0) multiplies each experiment's
  default time scale; values below 1 shorten runs at the cost of rougher
  elasticity dynamics (see EXPERIMENTS.md).
* ``REPRO_BENCH_TRACEMALLOC`` (default off) additionally traces Python
  allocations and attaches the top allocation sites to each benchmark's
  exported ``memory`` record — slow, for memory debugging only.
"""

import os
import resource
import sys
import tracemalloc

import pytest


def bench_scale() -> float:
    """Global multiplier for the experiments' default time scales."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def _tracemalloc_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_TRACEMALLOC", "").strip() not in ("", "0")


@pytest.fixture(scope="session", autouse=True)
def _tracemalloc_session():
    """Trace Python allocations for the whole run when the knob is set."""
    started = False
    if _tracemalloc_enabled() and not tracemalloc.is_tracing():
        tracemalloc.start()
        started = True
    yield
    if started:
        tracemalloc.stop()


def peak_rss_bytes() -> int:
    """Process high-water RSS in bytes (``ru_maxrss`` is KiB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def memory_snapshot(top: int = 10) -> dict:
    """Peak-memory record attached to every exported bench payload.

    Always carries the getrusage high-water RSS; with
    ``REPRO_BENCH_TRACEMALLOC`` set it adds traced Python heap totals and
    the ``top`` largest allocation sites.
    """
    snapshot = {"peak_rss_bytes": peak_rss_bytes()}
    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
        stats = tracemalloc.take_snapshot().statistics("lineno")[:top]
        snapshot["tracemalloc"] = {
            "current_bytes": current,
            "peak_bytes": peak,
            "top": [
                {
                    "site": str(stat.traceback),
                    "bytes": stat.size,
                    "count": stat.count,
                }
                for stat in stats
            ],
        }
    return snapshot


@pytest.fixture
def report(capsys):
    """Print through pytest's capture, so harness output reaches the tee."""

    def _print(text: str = "") -> None:
        with capsys.disabled():
            print(text)

    return _print


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations; repeated rounds would
    only re-measure the same run.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
