"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints a
``paper=`` vs ``measured=`` report (bypassing pytest's capture so it shows
up in the tee'd output), and asserts the qualitative *shape* the paper
claims — who wins, by roughly what factor, where crossovers fall.

Environment knobs:

* ``REPRO_BENCH_SCALE`` (float, default 1.0) multiplies each experiment's
  default time scale; values below 1 shorten runs at the cost of rougher
  elasticity dynamics (see EXPERIMENTS.md).
"""

import os

import pytest


def bench_scale() -> float:
    """Global multiplier for the experiments' default time scales."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture
def report(capsys):
    """Print through pytest's capture, so harness output reaches the tee."""

    def _print(text: str = "") -> None:
        with capsys.disabled():
            print(text)

    return _print


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations; repeated rounds would
    only re-measure the same run.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
