"""Benchmarks of the vectorized ASPE matching kernel (wall-clock).

Three measurements around the packed-matrix kernel (DESIGN.md, "the
matching kernel"):

* single-publication matching vs a seed-style per-pair Python loop
  (``match_encrypted`` over every stored subscription) — the kernel must
  hold a >=5x mean speedup on the standard 20 publications x 2000
  subscriptions workload;
* ``match_batch`` vs sequential ``match`` — the batch path must return
  bit-identical decisions and not be slower;
* store/remove churn — incremental maintenance must never trigger a full
  repack (``full_pack_count`` stays 0) and must keep tombstones bounded
  via compaction.

Results are exported to ``BENCH_matching.json`` (override the path with
``REPRO_BENCH_MATCHING_OUT``) for the CI workflow to archive.
"""

import os
import random
import time

from repro.filtering import AspeCipher, AspeKey, AspeLibrary, match_encrypted
from repro.metrics import write_json
from repro.workloads import WorkloadGenerator

from conftest import memory_snapshot

SUBSCRIPTIONS = 2_000
PUBLICATIONS = 20
RESULTS = {}


def make_encrypted_workload():
    generator = WorkloadGenerator(dimensions=4, matching_rate=0.01, seed=5)
    cipher = AspeCipher(
        AspeKey.generate(4, rng=random.Random(1)), rng=random.Random(2)
    )
    encrypted_subs = [
        cipher.encrypt_subscription(generator.predicate_set())
        for _ in range(SUBSCRIPTIONS)
    ]
    encrypted_pubs = [
        cipher.encrypt_publication(generator.publication_attributes())
        for _ in range(PUBLICATIONS)
    ]
    return encrypted_subs, encrypted_pubs


def build_library(encrypted_subs):
    library = AspeLibrary()
    for sub_id, encrypted in enumerate(encrypted_subs):
        library.store(sub_id, encrypted)
    return library


def seed_style_match(subs, publication):
    """The seed implementation's shape: one ``match_encrypted`` per pair."""
    return [sub_id for sub_id, enc in subs.items() if match_encrypted(publication, enc)]


def time_mean(fn, rounds):
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds


def test_single_match_vs_seed_loop(benchmark, report):
    encrypted_subs, encrypted_pubs = make_encrypted_workload()
    library = build_library(encrypted_subs)
    subs = dict(enumerate(encrypted_subs))

    def run_kernel():
        return [library.match(pub) for pub in encrypted_pubs]

    kernel_decisions = benchmark(run_kernel)
    RESULTS["single_mean_s"] = benchmark.stats.stats.mean

    legacy_decisions = [seed_style_match(subs, pub) for pub in encrypted_pubs]
    assert kernel_decisions == legacy_decisions
    RESULTS["legacy_mean_s"] = time_mean(
        lambda: [seed_style_match(subs, pub) for pub in encrypted_pubs], rounds=5
    )
    speedup = RESULTS["legacy_mean_s"] / RESULTS["single_mean_s"]
    RESULTS["single_vs_legacy_speedup"] = speedup
    report()
    report(
        f"ASPE single matching ({PUBLICATIONS} publications x "
        f"{SUBSCRIPTIONS} subscriptions)"
    )
    report(f"  seed-style loop : {RESULTS['legacy_mean_s'] * 1000:8.2f} ms")
    report(f"  packed kernel   : {RESULTS['single_mean_s'] * 1000:8.2f} ms")
    report(f"  speedup         : {speedup:8.1f}x (acceptance floor: 5x)")
    assert speedup >= 5.0


def test_batch_match_vs_single(benchmark, report):
    encrypted_subs, encrypted_pubs = make_encrypted_workload()
    library = build_library(encrypted_subs)

    batch_decisions = benchmark(lambda: library.match_batch(encrypted_pubs))
    RESULTS["batch_mean_s"] = benchmark.stats.stats.mean

    # Bit-identical to the sequential path, per-publication order included.
    assert batch_decisions == [library.match(pub) for pub in encrypted_pubs]
    if "single_mean_s" in RESULTS:
        ratio = RESULTS["single_mean_s"] / RESULTS["batch_mean_s"]
        RESULTS["batch_vs_single_speedup"] = ratio
        report()
        report(f"ASPE batch matching ({PUBLICATIONS} publications in one call)")
        report(f"  sequential match: {RESULTS['single_mean_s'] * 1000:8.2f} ms")
        report(f"  match_batch     : {RESULTS['batch_mean_s'] * 1000:8.2f} ms")
        report(f"  speedup         : {ratio:8.2f}x (acceptance floor: 1x)")
        # One matrix-matrix product over reused workspace buffers must
        # beat twenty matrix-vector products, not just tie them.
        assert ratio >= 1.0


def test_store_remove_churn(benchmark, report):
    encrypted_subs, encrypted_pubs = make_encrypted_workload()
    rng = random.Random(77)

    def churn():
        library = build_library(encrypted_subs)
        stored = set(range(SUBSCRIPTIONS))
        for _ in range(1_000):
            sub_id = rng.randrange(SUBSCRIPTIONS)
            if sub_id in stored:
                library.remove(sub_id)
                stored.discard(sub_id)
            else:
                library.store(sub_id, encrypted_subs[sub_id])
                stored.add(sub_id)
        return library

    library = benchmark(churn)
    RESULTS["churn_mean_s"] = benchmark.stats.stats.mean
    RESULTS["churn_full_packs"] = library.full_pack_count
    RESULTS["churn_compactions"] = library.compaction_count
    report()
    report(f"ASPE store/remove churn (1000 ops on {SUBSCRIPTIONS} subscriptions)")
    report(f"  build + churn   : {RESULTS['churn_mean_s'] * 1000:8.2f} ms")
    report(f"  full repacks    : {library.full_pack_count} (must stay 0)")
    report(f"  compactions     : {library.compaction_count}")
    # Incremental maintenance: appends and compactions only, never a
    # stored-set-sized repack, and tombstones stay bounded.
    assert library.full_pack_count == 0
    assert library._dead_rows <= max(library._rows - library._dead_rows, 64)
    # Decisions after churn still agree with the per-pair reference
    # (match returns ids in store order, so iterate the exported state).
    subs = dict(library.export_state())
    for pub in encrypted_pubs[:5]:
        assert library.match(pub) == seed_style_match(subs, pub)

    path = os.environ.get("REPRO_BENCH_MATCHING_OUT", "BENCH_matching.json")
    write_json(
        path,
        {
            "workload": {
                "subscriptions": SUBSCRIPTIONS,
                "publications": PUBLICATIONS,
                "dimensions": 4,
            },
            "results": dict(RESULTS),
            "memory": memory_snapshot(),
        },
    )
    report(f"  exported        : {path}")
