"""Figure 8: elastic scaling under a synthetic ramp workload.

Paper: starting from a single host running all 32 slices with 100 K
subscriptions, the publication rate ramps to 350/s, holds, and ramps back
to idle.  The enforcer grows the deployment to ≈ 15 hosts and shrinks it
back to one; per-host CPU load stays within a 40–70% envelope with the
average close to the 50% target, and delays stay small despite the
migrations (the 1 → 2 host migration hurts most).

The run is time-compressed (default 4×; see EXPERIMENTS.md) — rates,
host counts and envelopes are preserved, but the compressed ramp makes
the transient delay spikes near the peak larger than the paper's.
"""

from repro.experiments import run_figure8
from repro.metrics import format_table

from conftest import bench_scale, run_once

TIME_SCALE = 0.25 * bench_scale()


def test_figure8_synthetic_elasticity(benchmark, report):
    result = run_once(benchmark, lambda: run_figure8(time_scale=TIME_SCALE))

    report()
    report(f"Figure 8 — synthetic ramp 0 → 350 → 0 pub/s (time scale {TIME_SCALE:g})")
    rows = []
    host_by_window = {}
    for t, count in result.host_series:
        host_by_window[int(t // result.window_s)] = count
    util_by_window = {}
    for t, lo, avg, hi in result.utilization_series:
        util_by_window.setdefault(int(t // result.window_s), []).append((lo, avg, hi))
    delay_by_window = {int(w.window_start // result.window_s): w for w in result.delay_windows}
    for window_start, rate in result.rate_series:
        index = int(window_start // result.window_s)
        utils = util_by_window.get(index)
        delay = delay_by_window.get(index)
        rows.append(
            [
                f"{window_start:.0f}s",
                round(rate),
                host_by_window.get(index, "-"),
                "-" if not utils else f"{min(u[0] for u in utils):.0%}",
                "-" if not utils else f"{sum(u[1] for u in utils) / len(utils):.0%}",
                "-" if not utils else f"{max(u[2] for u in utils):.0%}",
                "-" if delay is None else round(delay.mean * 1000),
            ]
        )
    report(
        format_table(
            ["window", "rate", "hosts", "cpu min", "cpu avg", "cpu max", "delay ms"],
            rows[:: max(1, len(rows) // 20)],
        )
    )
    report(
        f"hosts: 1 → {result.max_hosts} → {result.final_hosts} "
        f"(paper: 1 → ~15 → 1); decisions: {len(result.decisions)}; "
        f"migrations: {len(result.migration_reports)}"
    )

    # Shape: the system scales out near the paper's host range and fully in.
    assert 9 <= result.max_hosts <= 18
    assert result.final_hosts == 1
    assert result.host_series[0][1] == 1
    # Both directions actually happened.
    kinds = {d.kind for d in result.decisions}
    assert "global_overload" in kinds and "global_underload" in kinds
    # Migration transparency: every publication notified exactly once.
    assert result.published == result.notified
    # The average per-host load sits near the 50% target while scaled out.
    lo, avg, hi = result.utilization_envelope()
    assert 0.30 < avg < 0.65
    # Delays are sub-second in the settled scaled-out phase (plateau tail).
    plateau_end = (2.0 * 1200.0 * TIME_SCALE + 600.0 * TIME_SCALE)
    settled = [
        w.mean
        for w in result.delay_windows
        if 0.55 * plateau_end < w.window_start < 0.7 * plateau_end
    ]
    assert settled and min(settled) < 1.0
