"""Table I: operator slice migration times under a constant flow.

Paper (100 pub/s; 4 AP / 8 M / 4 EP slices on 2+4+2 hosts):

    AP          232 ±   31 ms   (stateless: no copy phase)
    M (12.5 K) 1497 ±  354 ms
    M (50 K)   2533 ± 1557 ms
    EP          275 ±   52 ms   (small transient state)

The shape to preserve: AP ≈ EP ≈ a few hundred ms, M migrations take
seconds and grow with the per-slice subscription state.
"""

from repro.experiments import run_table1
from repro.metrics import format_table

from conftest import run_once

PAPER = {
    "AP": (232, 31),
    "M (12.5 K)": (1497, 354),
    "M (50 K)": (2533, 1557),
    "EP": (275, 52),
}


def test_table1_migration_times(benchmark, report):
    rows = run_once(benchmark, lambda: run_table1(migrations_per_operator=25))

    report()
    report("Table I — migration times over 25 migrations per operator")
    report(
        format_table(
            ["operator", "paper avg±std ms", "measured avg ms", "measured std ms"],
            [
                [
                    row.operator,
                    "%d ± %d" % PAPER[row.operator],
                    round(row.average_ms),
                    round(row.std_ms),
                ]
                for row in rows
            ],
        )
    )

    by_op = {row.operator: row for row in rows}
    ap, m_small, m_large, ep = (
        by_op["AP"],
        by_op["M (12.5 K)"],
        by_op["M (50 K)"],
        by_op["EP"],
    )
    # Stateless/transient operators migrate in a few hundred ms.
    assert 150 < ap.average_ms < 500
    assert 150 < ep.average_ms < 600
    # M migrations are dominated by state: seconds, ordered by state size.
    assert m_small.average_ms > 3 * ap.average_ms
    assert m_large.average_ms > 1.5 * m_small.average_ms
    assert m_small.average_ms < 3000
    assert m_large.average_ms < 8000
    # Small relative deviations for the (near) stateless operators.
    assert ap.std_ms < ap.average_ms
    assert ep.std_ms < ep.average_ms
    assert len(ap.samples_ms) == 25
