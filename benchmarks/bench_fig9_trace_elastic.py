"""Figure 9: elastic scaling replaying the Frankfurt Stock Exchange trace.

Paper: the tick trace of Figure 1 is replayed sped up (one trace hour per
three experiment minutes) with the peak scaled from ≈ 1200 ticks/s to 190
publications/s over a fixed set of 100 K subscriptions.  The host count
ranges from 1 to 8, reacting to the market open and the afternoon spike
and dropping back in the evening; per-host load stays in the requested
envelope and average delays stay below a second except around abrupt load
steps.

The run is time-compressed by default (see EXPERIMENTS.md): the market
open is the hardest moment — a near-step in offered load against a
single-host deployment — and shows a transient delay spike that the
paper's gentler pacing avoids.
"""

from repro.experiments import run_figure9
from repro.metrics import format_table

from conftest import bench_scale, run_once

TIME_SCALE = 0.5 * bench_scale()


def test_figure9_trace_elasticity(benchmark, report):
    result = run_once(benchmark, lambda: run_figure9(time_scale=TIME_SCALE))

    report()
    report(f"Figure 9 — FSE trace replay, peak 190 pub/s (time scale {TIME_SCALE:g})")
    rows = []
    for (t, count), (_, lo, avg, hi) in list(
        zip(result.host_series, result.utilization_series)
    )[:: max(1, len(result.host_series) // 20)]:
        rows.append([f"{t:.0f}s", count, f"{lo:.0%}", f"{avg:.0%}", f"{hi:.0%}"])
    report(format_table(["time", "hosts", "cpu min", "cpu avg", "cpu max"], rows))
    delay_rows = [
        [f"{w.window_start:.0f}s", round(w.mean * 1000), round(w.maximum * 1000)]
        for w in result.delay_windows[:: max(1, len(result.delay_windows) // 15)]
    ]
    report(format_table(["window", "delay mean ms", "delay max ms"], delay_rows))
    report(
        f"hosts: 1 → {result.max_hosts} → {result.final_hosts} (paper: 1 to 8); "
        f"decisions: {len(result.decisions)}; migrations: {len(result.migration_reports)}"
    )

    # Shape: host range matches the paper's 1..8.
    assert result.host_series[0][1] == 1
    assert 6 <= result.max_hosts <= 10
    assert result.final_hosts <= 3  # evening consolidation
    # The afternoon spike drives the maximum host count: it must occur in
    # the second half of the day.
    peak_time = max(result.host_series, key=lambda pair: pair[1])[0]
    assert peak_time > 0.45 * result.duration_s
    # Exactly-once delivery through all migrations.
    assert result.published == result.notified
    # Load envelope around the target while scaled out.
    lo, avg, hi = result.utilization_envelope()
    assert 0.25 < avg < 0.65
    # Delays are sub-second across the day except around the open step:
    # at least 80% of windows have sub-second means.
    means = [w.mean for w in result.delay_windows]
    sub_second = sum(1 for m in means if m < 1.0)
    assert sub_second / len(means) > 0.8
