"""Wall-clock benchmark of the parallel matching execution backend.

Sweeps worker count {0, 1, 2, 4} x matcher batch size over the pipeline
workload from ``bench_pipeline.py`` (scaled up on the matching axis so
the M operator dominates), with every configuration replaying the exact
same ciphertexts.  For each configuration the run must produce the
bit-identical notification multiset the inline (workers=0) path
produces — the determinism half of the acceptance criteria — and the
wall-clock comparisons are exported to ``BENCH_parallel.json`` (override
with ``REPRO_BENCH_PARALLEL_OUT``) for the CI workflow to archive.

The wall-clock floors scale with the hardware actually present:

* 1 worker must not lose to inline (floor >= 1x) — asserted when the
  host has at least 2 CPU cores, so pool overhead competes against a
  real second core rather than time-slicing one;
* 4 workers target >= 3x — asserted when the host has at least 4 cores.

On smaller hosts the measured ratios are still exported, flagged
``asserted: false``, so CI on full runners enforces what a laptop or a
1-core container can only report.
"""

import os
import random
import time

from repro.cluster import CloudProvider, HostSpec
from repro.filtering import (
    AspeCipher,
    AspeKey,
    AspeLibrary,
    ExactBackend,
    Op,
    Predicate,
    PredicateSet,
)
from repro.metrics import write_json
from repro.parallel import create_executor
from repro.pubsub import HubConfig, Publication, StreamHub, Subscription
from repro.sim import Environment

from conftest import memory_snapshot, run_once

SUBSCRIPTIONS = 2400
PUBLICATIONS = 400
WORKER_COUNTS = (0, 1, 2, 4)
BATCH_LIMITS = (32, 128)
CHUNK_ROWS = 256
ENGINE_HOSTS = 2
RESULTS = {}

_WORKLOAD = None


def band(attribute, low, high):
    return PredicateSet.of(
        Predicate(attribute, Op.GE, low), Predicate(attribute, Op.LE, high)
    )


def encrypted_workload():
    """One shared ciphertext workload: every run matches identical bits."""
    global _WORKLOAD
    if _WORKLOAD is None:
        cipher = AspeCipher(
            AspeKey.generate(4, rng=random.Random(21)), rng=random.Random(22)
        )
        rng = random.Random(23)
        subs = [
            cipher.encrypt_subscription(
                band(sub_id % 4, float((sub_id % 6) * 50), float((sub_id % 6) * 50) + 80.0)
            )
            for sub_id in range(SUBSCRIPTIONS)
        ]
        pubs = [
            cipher.encrypt_publication(
                [rng.uniform(0.0, 300.0) for _ in range(4)]
            )
            for _ in range(PUBLICATIONS)
        ]
        _WORKLOAD = (subs, pubs)
    return _WORKLOAD


def run_pipeline(workers: int, batch_limit: int, executor=None):
    encrypted_subs, encrypted_pubs = encrypted_workload()
    env = Environment()
    cloud = CloudProvider(env, spec=HostSpec(cores=8), max_hosts=8)
    hosts = [cloud.provision_now() for _ in range(ENGINE_HOSTS + 1)]
    config = HubConfig(
        ap_slices=2,
        m_slices=4,
        ep_slices=2,
        sink_slices=1,
        encrypted=False,
        backend_factory=lambda index: ExactBackend(AspeLibrary()),
        ap_batch_limit=batch_limit,
        matcher_batch_limit=batch_limit,
        ep_batch_limit=batch_limit,
        match_workers=workers,
        match_chunk_rows=CHUNK_ROWS,
        match_executor=executor,
    )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy_all_on(hosts[:ENGINE_HOSTS], [hosts[ENGINE_HOSTS]])
    for sub_id, encrypted in enumerate(encrypted_subs):
        hub.subscribe(Subscription(sub_id, 1000 + sub_id, encrypted))
    env.run()
    for pub_id, encrypted in enumerate(encrypted_pubs):
        hub.publish(Publication(pub_id, payload=encrypted, published_at=env.now))
    wall_start = time.perf_counter()
    env.run()
    wall_s = time.perf_counter() - wall_start
    return {
        "wall_s": wall_s,
        "publications_per_s": PUBLICATIONS / wall_s,
        # Sorted multiset: parallel execution never reorders content, but
        # cross-channel delivery interleaving was never ordered.
        "notifications": sorted(
            (n.pub_id, n.count, tuple(sorted(n.subscriber_ids)))
            for n in hub.notification_log
        ),
    }


def test_parallel_matching_sweep(benchmark, report):
    cpu_count = os.cpu_count() or 1
    inline = {
        limit: run_pipeline(0, limit) for limit in BATCH_LIMITS
    }
    sweep = {}

    def run_sweep():
        for workers in WORKER_COUNTS:
            if workers == 0:
                continue
            executor = create_executor(workers, "auto", CHUNK_ROWS)
            try:
                for limit in BATCH_LIMITS:
                    # Warm-up primes worker processes and snapshot caches
                    # so the measured run reflects steady state.
                    run_pipeline(workers, limit, executor=executor)
                    sweep[(workers, limit)] = run_pipeline(
                        workers, limit, executor=executor
                    )
            finally:
                executor.shutdown()

    run_once(benchmark, run_sweep)

    for limit, baseline in inline.items():
        assert len(baseline["notifications"]) == PUBLICATIONS
    for (workers, limit), run in sweep.items():
        # Byte-identical delivery: the whole point of the epoch protocol.
        assert run["notifications"] == inline[limit]["notifications"], (
            f"workers={workers} batch={limit} diverged from inline"
        )

    best_limit = max(
        BATCH_LIMITS, key=lambda limit: inline[limit]["publications_per_s"]
    )
    speedups = {
        (workers, limit): run["wall_s"] and inline[limit]["wall_s"] / run["wall_s"]
        for (workers, limit), run in sweep.items()
    }
    floor_1 = speedups[(1, best_limit)]
    target_4 = speedups[(4, best_limit)]
    assert_floor = cpu_count >= 2
    assert_target = cpu_count >= 4

    for limit in BATCH_LIMITS:
        RESULTS[f"workers=0,batch={limit}"] = {
            "wall_s": inline[limit]["wall_s"],
            "publications_per_s": inline[limit]["publications_per_s"],
        }
    for (workers, limit), run in sweep.items():
        RESULTS[f"workers={workers},batch={limit}"] = {
            "wall_s": run["wall_s"],
            "publications_per_s": run["publications_per_s"],
            "speedup_vs_inline": speedups[(workers, limit)],
        }

    report()
    report(
        f"Parallel matching wall-clock ({PUBLICATIONS} publications x "
        f"{SUBSCRIPTIONS} subscriptions, chunk rows {CHUNK_ROWS}, "
        f"host cpu count {cpu_count})"
    )
    for limit in BATCH_LIMITS:
        report(f"  batch limit {limit}:")
        report(
            f"    workers=0 : {inline[limit]['wall_s'] * 1000:8.1f} ms "
            f"({inline[limit]['publications_per_s']:8,.0f} pub/s)"
        )
        for workers in WORKER_COUNTS[1:]:
            run = sweep[(workers, limit)]
            report(
                f"    workers={workers} : {run['wall_s'] * 1000:8.1f} ms "
                f"({run['publications_per_s']:8,.0f} pub/s, "
                f"{speedups[(workers, limit)]:.2f}x)"
            )
    report(
        f"  1-worker floor  : {floor_1:.2f}x (>= 1x; "
        + ("asserted" if assert_floor else "reported only, needs >= 2 cores")
        + ")"
    )
    report(
        f"  4-worker target : {target_4:.2f}x (>= 3x; "
        + ("asserted" if assert_target else "reported only, needs >= 4 cores")
        + ")"
    )

    path = os.environ.get("REPRO_BENCH_PARALLEL_OUT", "BENCH_parallel.json")
    write_json(
        path,
        {
            "workload": {
                "subscriptions": SUBSCRIPTIONS,
                "publications": PUBLICATIONS,
                "worker_counts": list(WORKER_COUNTS),
                "batch_limits": list(BATCH_LIMITS),
                "chunk_rows": CHUNK_ROWS,
                "engine_hosts": ENGINE_HOSTS,
            },
            "environment": {"cpu_count": cpu_count},
            "results": dict(RESULTS),
            "acceptance": {
                "notifications_byte_identical": True,
                "one_worker_floor": {
                    "speedup": floor_1,
                    "threshold": 1.0,
                    "asserted": assert_floor,
                },
                "four_worker_target": {
                    "speedup": target_4,
                    "threshold": 3.0,
                    "asserted": assert_target,
                },
            },
            "memory": memory_snapshot(),
        },
    )
    report(f"  exported        : {path}")

    if assert_floor:
        assert floor_1 >= 1.0, (
            f"1-worker run lost to inline: {floor_1:.2f}x"
        )
    if assert_target:
        assert target_4 >= 3.0, (
            f"4-worker run below 3x target: {target_4:.2f}x"
        )
