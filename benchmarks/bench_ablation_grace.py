"""Ablation: the grace period between enforcement actions.

The paper's policy "specifies a grace period of at least 30 seconds".
A trigger-happy enforcer (short grace) reacts to every transient probe,
producing more scaling decisions and more migrations; a long grace reacts
sluggishly to ramps.  This ablation quantifies the trade-off.
"""

from repro.experiments import run_grace_period_ablation
from repro.metrics import format_table

from conftest import run_once


def test_grace_period_ablation(benchmark, report):
    rows = run_once(
        benchmark, lambda: run_grace_period_ablation(grace_periods_s=(5.0, 30.0, 90.0))
    )

    report()
    report("Ablation — grace period between scaling actions")
    report(
        format_table(
            ["variant", "decisions", "migrations", "state moved MB",
             "mean delay ms", "max delay ms", "max hosts"],
            [
                [
                    r.variant,
                    r.decisions,
                    r.migrations,
                    round(r.state_moved_mb, 1),
                    round(r.mean_delay_s * 1000),
                    round(r.max_delay_s * 1000),
                    r.max_hosts,
                ]
                for r in rows
            ],
        )
    )

    by_variant = {r.variant: r for r in rows}
    short, paper, long_ = (
        by_variant["grace=5s"],
        by_variant["grace=30s"],
        by_variant["grace=90s"],
    )
    # A short grace produces more (churny) decisions than the paper's 30 s.
    assert short.decisions >= paper.decisions
    # A long grace cannot decide more often than the paper's setting.
    assert long_.decisions <= paper.decisions
    # All variants elastically scale the deployment.
    for r in rows:
        assert r.max_hosts >= 3
