"""Chaos suite benchmark: zero-loss, duplicate-free delivery under faults.

Runs the three scenario families of the failure model (RESILIENCE.md) and
byte-compares the delivered notification multiset of every faulted run
against a fault-free baseline of the same deployment:

* correlated rack loss (every matcher host at once, recovery onto spares),
* manager crash at a chosen phase of a migration *and* of a reshard, with
  standby failover settling the interrupted decision,
* network partition + heal, with retained-suffix replay deduplicated at
  the receivers — including across a live M-slice migration started
  inside the partition window.

Results are exported to ``BENCH_chaos.json`` (override with
``REPRO_BENCH_CHAOS_OUT``); CI archives the file.
"""

import dataclasses
import os

from repro.experiments import (
    run_manager_crash,
    run_partition_heal,
    run_rack_loss,
)
from repro.metrics import format_table, write_json

from conftest import memory_snapshot, run_once

RACK_SIZE = 2
CRASH_PHASE = "copy"


def run_all_scenarios():
    return [
        run_rack_loss(rack_size=RACK_SIZE),
        run_manager_crash(during="migration", phase=CRASH_PHASE),
        run_manager_crash(during="reshard", phase=CRASH_PHASE),
        run_partition_heal(),
        run_partition_heal(migrate=True),
    ]


def test_chaos_scenarios_zero_loss(benchmark, report):
    outcomes = run_once(benchmark, run_all_scenarios)

    report()
    report(
        "Chaos suite — delivered multiset vs fault-free baseline "
        f"(rack size {RACK_SIZE}, manager crash at {CRASH_PHASE!r})"
    )
    report(
        format_table(
            ["scenario", "published", "lost", "dups suppressed",
             "multiset identical"],
            [
                [o.scenario, o.published, o.lost, o.duplicates_suppressed,
                 "yes" if o.multiset_identical else "NO"]
                for o in outcomes
            ],
        )
    )
    for o in outcomes:
        report(f"  {o.scenario}: {o.detail}")

    path = os.environ.get("REPRO_BENCH_CHAOS_OUT", "BENCH_chaos.json")
    write_json(
        path,
        {
            "workload": {
                "rack_size": RACK_SIZE,
                "crash_phase": CRASH_PHASE,
                "matching": "exact (deterministic multisets)",
            },
            "results": [dataclasses.asdict(o) for o in outcomes],
            "memory": memory_snapshot(),
        },
    )
    report(f"  exported: {path}")

    by_name = {o.scenario: o for o in outcomes}
    # (a) Correlated loss of the whole matcher rack: nothing lost, nothing
    # duplicated, content byte-identical to the fault-free run.
    rack = by_name["rack_loss"]
    assert rack.detail["hosts_lost"] == RACK_SIZE > 1
    assert rack.detail["replayed_events"] > 0
    # (b) Manager crash during a migration AND during a reshard: a standby
    # takes over, the interrupted decision is settled (completed or rolled
    # back), and the operation's phase spans still tile its root span.
    for name in ("manager_crash_migration", "manager_crash_reshard"):
        o = by_name[name]
        assert o.detail["failovers"] == 1
        assert o.detail["outcomes"], f"{name}: decision never settled"
        assert all(
            verdict in ("completed", "rolled_back")
            for _, verdict in o.detail["outcomes"]
        )
        assert o.detail["phase_spans_tile"], f"{name}: phase spans leak"
    # (c) Partition + heal: the circuit breaker sheds instead of feeding
    # the dead fabric, replay + receive-side dedup restore the multiset —
    # also across a live migration started inside the partition window.
    assert by_name["partition_heal"].detail["breaker_trips"] > 0
    assert by_name["partition_heal"].duplicates_suppressed > 0
    assert by_name["partition_heal_migrate"].detail["migrated"]
    # The headline guarantee, byte-compared for every scenario.
    for o in outcomes:
        assert o.zero_loss, f"{o.scenario}: lost {o.lost} notifications"
        assert o.multiset_identical, f"{o.scenario}: multiset diverged"
