"""Ablation: slice-selection strategy (paper §V design choice).

The enforcer selects slices to migrate by subset-sum DP, picking — among
all sets that shed enough CPU — the one with minimal memory, "to minimize
the cost and duration of migrations and to reduce service degradation".
This ablation runs the same elastic ramp with the paper's min-memory
selection, a greedy max-CPU selection and an arbitrary-order selection,
and compares the total state moved.
"""

from repro.experiments import run_selection_ablation
from repro.metrics import format_table

from conftest import run_once


def test_selection_strategy_ablation(benchmark, report):
    rows = run_once(benchmark, lambda: run_selection_ablation())

    report()
    report("Ablation — slice selection strategy (same ramp, same policy)")
    report(
        format_table(
            ["variant", "migrations", "state moved MB", "decisions",
             "mean delay ms", "max hosts"],
            [
                [
                    r.variant,
                    r.migrations,
                    round(r.state_moved_mb, 1),
                    r.decisions,
                    round(r.mean_delay_s * 1000),
                    r.max_hosts,
                ]
                for r in rows
            ],
        )
    )

    by_variant = {r.variant: r for r in rows}
    paper = by_variant["min-memory (paper)"]
    greedy = by_variant["greedy-cpu"]
    # The paper's min-memory selection moves less state than the greedy
    # max-CPU selection, which preferentially grabs the state-heavy M
    # slices (the claim this design choice rests on).
    assert paper.state_moved_mb < greedy.state_moved_mb
    # All variants still scale the system (this ablation is about cost,
    # not about whether elasticity works).
    for r in rows:
        assert r.max_hosts >= 3
        assert r.migrations > 0
