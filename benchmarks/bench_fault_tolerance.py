"""Extension benchmark: passive-replication recovery cost.

The paper notes its runtime supports passive/active replication but leaves
the evaluation out of scope (§III).  Our reproduction implements the
passive scheme end to end (checkpoints + upstream replay); this benchmark
characterizes it: recovery time and replay volume as a function of the
checkpoint interval, for a crash of the host carrying all M slices.
"""

from repro.cluster import CloudProvider, FailureDetector, HostSpec, crash_host
from repro.engine import ReliabilityCoordinator
from repro.filtering import CostModel
from repro.metrics import format_table
from repro.pubsub import HubConfig, StreamHub, Subscription
from repro.pubsub.source import SourceDriver
from repro.sim import Environment

from conftest import run_once

SUBSCRIPTIONS = 20_000
RATE = 60.0


def run_crash_scenario(checkpoint_interval_s: float):
    env = Environment()
    cloud = CloudProvider(env, spec=HostSpec(cores=8), max_hosts=10)
    ap_ep = cloud.provision_now()
    m_host = cloud.provision_now()
    sink = cloud.provision_now()
    spare = cloud.provision_now()
    config = HubConfig.sampled(
        0.01, ap_slices=2, m_slices=4, ep_slices=2, sink_slices=1,
        cost_model=CostModel(),
    )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy(ap_hosts=[ap_ep], m_hosts=[m_host], ep_hosts=[ap_ep],
               sink_hosts=[sink])
    coordinator = ReliabilityCoordinator(
        hub.runtime, interval_s=checkpoint_interval_s,
        replacement_host_fn=lambda: spare,
    )
    coordinator.start(hub.engine_slice_ids())
    for sub_id in range(SUBSCRIPTIONS):
        hub.subscribe(Subscription(sub_id, sub_id, None))
    env.run(until=2.0)

    source = SourceDriver(hub)
    source.publish_constant(rate_per_s=RATE, duration_s=40.0)
    detector = FailureDetector(env, detection_delay_s=1.0)
    detector.subscribe(lambda host: coordinator.handle_host_crash(host))

    def crash():
        # Crash mid-interval (but within the load window) so the
        # checkpoint lag is representative.
        yield env.timeout(2.0 + min(2.5 * checkpoint_interval_s, 28.0))
        crash_host(cloud, m_host)
        detector.report_crash(m_host)

    env.process(crash())
    env.run(until=60.0)

    reports = coordinator.recovery_reports
    return {
        "interval": checkpoint_interval_s,
        "recovery_ms": sum(r.duration_s for r in reports) / len(reports) * 1000,
        "replayed": sum(r.replayed_events for r in reports),
        "published": source.publications_sent,
        "notified": hub.notified_publications,
        "checkpoints": coordinator.store.checkpoints_stored,
    }


def test_recovery_cost_vs_checkpoint_interval(benchmark, report):
    intervals = (2.0, 8.0, 20.0)
    rows = run_once(
        benchmark, lambda: [run_crash_scenario(i) for i in intervals]
    )

    report()
    report("Extension — passive replication: crash of the M host "
           f"({SUBSCRIPTIONS} subscriptions, {RATE:g} pub/s)")
    report(
        format_table(
            ["checkpoint every", "avg recovery ms", "events replayed",
             "checkpoints taken", "published", "notified"],
            [
                [f"{r['interval']:g}s", round(r["recovery_ms"]),
                 r["replayed"], r["checkpoints"], r["published"], r["notified"]]
                for r in rows
            ],
        )
    )

    by_interval = {r["interval"]: r for r in rows}
    # Exactly-once notification survives every crash scenario.
    for r in rows:
        assert r["notified"] == r["published"]
    # Longer checkpoint intervals mean more events to replay on recovery...
    assert by_interval[20.0]["replayed"] > by_interval[2.0]["replayed"]
    # ...and fewer checkpoints taken during the run.
    assert by_interval[20.0]["checkpoints"] < by_interval[2.0]["checkpoints"]
