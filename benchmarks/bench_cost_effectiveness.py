"""Cost-effectiveness of elasticity (the paper's §I motivation).

"Static provisioning of cloud resources for a pub/sub system supporting
the peak load of this application would be cost-ineffective."  This
benchmark quantifies the claim: it replays the FSE trading day elastically
and compares the consumed host-seconds with a static deployment sized for
the same day's peak.
"""

from repro.experiments import run_figure9
from repro.experiments.cost import run_cost_effectiveness
from repro.metrics import format_table

from conftest import bench_scale, run_once

TIME_SCALE = 0.35 * bench_scale()


def test_cost_effectiveness_of_elasticity(benchmark, report):
    comparison = run_once(
        benchmark, lambda: run_cost_effectiveness(time_scale=TIME_SCALE)
    )

    report()
    report("Cost-effectiveness — elastic vs. static provisioning (FSE day)")
    report(
        format_table(
            ["provisioning", "host-seconds", "avg hosts"],
            [
                [
                    "static @ peak",
                    round(comparison.static_peak_host_seconds),
                    comparison.peak_hosts,
                ],
                [
                    "elastic (E-STREAMHUB)",
                    round(comparison.elastic_host_seconds),
                    round(comparison.average_hosts, 2),
                ],
            ],
        )
    )
    report(
        f"elasticity saves {comparison.savings_vs_static_peak:.0%} of the "
        f"static-peak bill over the trading day"
    )

    # The headline claim: elastic provisioning costs a fraction of static
    # peak provisioning on a trace that is idle most of the day.
    assert comparison.peak_hosts >= 5
    assert comparison.savings_vs_static_peak > 0.35
    assert comparison.average_hosts < comparison.peak_hosts
