"""Micro-benchmarks of the filtering libraries (wall-clock this time).

The paper's premise for the evaluation design: encrypted (ASPE) filtering
must match every publication against *every* stored subscription, while
plaintext filtering can exploit workload structure (§VI-B).  These
micro-benchmarks measure the actual Python implementations: the counting
index — which exploits the 1% selectivity — beats both all-pairs
matchers by a wide margin.  (Wall-clock, the numpy-vectorized ASPE can
outrun the pure-Python brute-force loop despite doing strictly more
arithmetic; the calibrated CostModel, not these Python timings, is what
the cluster simulation charges.)

(Unlike the simulation benches, these run multiple timed rounds — they
measure this library's real matching throughput.)
"""

import random

import pytest

from repro.filtering import (
    AspeCipher,
    AspeKey,
    AspeLibrary,
    BruteForceLibrary,
    CountingIndexLibrary,
)
from repro.workloads import WorkloadGenerator

SUBSCRIPTIONS = 2_000
RESULTS = {}


def make_workload():
    generator = WorkloadGenerator(dimensions=4, matching_rate=0.01, seed=5)
    filters = [generator.predicate_set() for _ in range(SUBSCRIPTIONS)]
    publications = [generator.publication_attributes() for _ in range(20)]
    return filters, publications


def test_brute_force_matching(benchmark):
    filters, publications = make_workload()
    library = BruteForceLibrary()
    for sub_id, predicate_set in enumerate(filters):
        library.store(sub_id, predicate_set)

    def run():
        return sum(len(library.match(pub)) for pub in publications)

    RESULTS["brute"] = benchmark(run)
    RESULTS["brute_mean_s"] = benchmark.stats.stats.mean


def test_counting_index_matching(benchmark):
    filters, publications = make_workload()
    library = CountingIndexLibrary()
    for sub_id, predicate_set in enumerate(filters):
        library.store(sub_id, predicate_set)

    def run():
        return sum(len(library.match(pub)) for pub in publications)

    RESULTS["index"] = benchmark(run)
    RESULTS["index_mean_s"] = benchmark.stats.stats.mean
    # Same matching decisions as brute force.
    if "brute" in RESULTS:
        assert RESULTS["index"] == RESULTS["brute"]


def test_aspe_encrypted_matching(benchmark, report):
    """Runs last (file order) and checks the cost ordering overall."""
    filters, publications = make_workload()
    cipher = AspeCipher(AspeKey.generate(4, rng=random.Random(1)),
                        rng=random.Random(2))
    library = AspeLibrary()
    for sub_id, predicate_set in enumerate(filters):
        library.store(sub_id, cipher.encrypt_subscription(predicate_set))
    encrypted_pubs = [cipher.encrypt_publication(pub) for pub in publications]

    def run():
        return sum(len(library.match(pub)) for pub in encrypted_pubs)

    RESULTS["aspe"] = benchmark(run)
    RESULTS["aspe_mean_s"] = benchmark.stats.stats.mean
    # Encrypted decisions equal the plaintext ones.
    if "brute" in RESULTS:
        assert RESULTS["aspe"] == RESULTS["brute"]

    if all(k in RESULTS for k in ("brute_mean_s", "index_mean_s", "aspe_mean_s")):
        report()
        report("Matching micro-benchmarks (20 publications vs 2000 subscriptions)")
        report(f"  counting index : {RESULTS['index_mean_s'] * 1000:8.2f} ms")
        report(f"  brute force    : {RESULTS['brute_mean_s'] * 1000:8.2f} ms")
        report(f"  ASPE encrypted : {RESULTS['aspe_mean_s'] * 1000:8.2f} ms")
        # The index exploits the 1% selectivity; ASPE cannot index at all.
        assert RESULTS["index_mean_s"] < RESULTS["brute_mean_s"]
        assert RESULTS["aspe_mean_s"] > RESULTS["index_mean_s"]
