"""Micro-benchmarks of the filtering libraries (wall-clock this time).

The paper's premise for the evaluation design: encrypted (ASPE) filtering
must match every publication against *every* stored subscription, while
plaintext filtering can exploit workload structure (§VI-B).  That premise
is about operation *counts* — and the calibrated CostModel, not these
Python timings, is what the cluster simulation charges.  Wall-clock, the
packed-matrix ASPE kernel (see DESIGN.md, "the matching kernel") does its
all-pairs work in a handful of numpy calls and outruns both pure-Python
matchers, including the counting index that exploits the 1% selectivity;
among the interpreted ones the index still beats brute force by a wide
margin.

(Unlike the simulation benches, these run multiple timed rounds — they
measure this library's real matching throughput.)
"""

import random

import pytest

from repro.filtering import (
    AspeCipher,
    AspeKey,
    AspeLibrary,
    BruteForceLibrary,
    CountingIndexLibrary,
)
from repro.workloads import WorkloadGenerator

SUBSCRIPTIONS = 2_000
RESULTS = {}


def make_workload():
    generator = WorkloadGenerator(dimensions=4, matching_rate=0.01, seed=5)
    filters = [generator.predicate_set() for _ in range(SUBSCRIPTIONS)]
    publications = [generator.publication_attributes() for _ in range(20)]
    return filters, publications


def test_brute_force_matching(benchmark):
    filters, publications = make_workload()
    library = BruteForceLibrary()
    for sub_id, predicate_set in enumerate(filters):
        library.store(sub_id, predicate_set)

    def run():
        return sum(len(library.match(pub)) for pub in publications)

    RESULTS["brute"] = benchmark(run)
    RESULTS["brute_mean_s"] = benchmark.stats.stats.mean


def test_counting_index_matching(benchmark):
    filters, publications = make_workload()
    library = CountingIndexLibrary()
    for sub_id, predicate_set in enumerate(filters):
        library.store(sub_id, predicate_set)

    def run():
        return sum(len(library.match(pub)) for pub in publications)

    RESULTS["index"] = benchmark(run)
    RESULTS["index_mean_s"] = benchmark.stats.stats.mean
    # Same matching decisions as brute force.
    if "brute" in RESULTS:
        assert RESULTS["index"] == RESULTS["brute"]


def test_aspe_encrypted_matching(benchmark, report):
    """Runs last (file order) and checks the cost ordering overall."""
    filters, publications = make_workload()
    cipher = AspeCipher(AspeKey.generate(4, rng=random.Random(1)),
                        rng=random.Random(2))
    library = AspeLibrary()
    for sub_id, predicate_set in enumerate(filters):
        library.store(sub_id, cipher.encrypt_subscription(predicate_set))
    encrypted_pubs = [cipher.encrypt_publication(pub) for pub in publications]

    def run():
        return sum(len(library.match(pub)) for pub in encrypted_pubs)

    RESULTS["aspe"] = benchmark(run)
    RESULTS["aspe_mean_s"] = benchmark.stats.stats.mean
    # Encrypted decisions equal the plaintext ones.
    if "brute" in RESULTS:
        assert RESULTS["aspe"] == RESULTS["brute"]

    if all(k in RESULTS for k in ("brute_mean_s", "index_mean_s", "aspe_mean_s")):
        report()
        report("Matching micro-benchmarks (20 publications vs 2000 subscriptions)")
        report(f"  counting index : {RESULTS['index_mean_s'] * 1000:8.2f} ms")
        report(f"  brute force    : {RESULTS['brute_mean_s'] * 1000:8.2f} ms")
        report(f"  ASPE encrypted : {RESULTS['aspe_mean_s'] * 1000:8.2f} ms")
        # Among the interpreted matchers the index exploits the 1%
        # selectivity; the vectorized ASPE kernel beats both wall-clock
        # despite doing strictly more arithmetic (all pairs, encrypted).
        assert RESULTS["index_mean_s"] < RESULTS["brute_mean_s"]
        assert RESULTS["aspe_mean_s"] < RESULTS["index_mean_s"]
