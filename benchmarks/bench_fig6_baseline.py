"""Figure 6: baseline STREAMHUB performance (static configurations).

Top panel — maximal sustained throughput for 2–12 hosts with 100 K stored
ASPE subscriptions: the paper measures perfectly linear scaling up to 422
publications/s on 12 hosts (42.2 M encrypted match operations/s).

Bottom panel — notification delay percentiles at half the maximal
throughput per configuration (12 hosts: min 55 ms, p75 247 ms — dominated
by channel micro-batching; see EXPERIMENTS.md for the calibration notes).
"""

import pytest

from repro.experiments import ExperimentSetup, run_figure6
from repro.metrics import format_table

from conftest import run_once

PAPER_THROUGHPUT = {2: 70, 4: 141, 6: 211, 8: 281, 10: 352, 12: 422}
HOST_COUNTS = (2, 4, 6, 8, 10, 12)


_CACHE = {}


def figure6_results():
    """Compute Figure 6 once per session; the first bench pays the cost."""
    if "results" not in _CACHE:
        _CACHE["results"] = run_figure6(
            host_counts=HOST_COUNTS,
            setup=ExperimentSetup(),
            search_iterations=5,
            throughput_window_s=15.0,
            delay_duration_s=20.0,
        )
    return _CACHE["results"]


def test_figure6_top_throughput_scaling(benchmark, report):
    results = run_once(benchmark, figure6_results)
    subs = ExperimentSetup().subscriptions

    report()
    report("Figure 6 (top) — maximal throughput vs. hosts, 100 K subscriptions")
    report(
        format_table(
            ["hosts", "paper pub/s", "measured pub/s", "measured Mops/s"],
            [
                [
                    r.hosts,
                    PAPER_THROUGHPUT[r.hosts],
                    round(r.max_throughput, 1),
                    round(r.max_throughput * subs / 1e6, 1),
                ]
                for r in results
            ],
        )
    )

    # Shape: linear scaling in host count (M hosts = half the total).
    by_hosts = {r.hosts: r.max_throughput for r in results}
    for hosts in HOST_COUNTS:
        expected = by_hosts[12] * hosts / 12.0
        assert by_hosts[hosts] == pytest.approx(expected, rel=0.15), (
            f"throughput at {hosts} hosts deviates from linear scaling"
        )
    # Magnitude: 12 hosts close to the paper's 422 pub/s.
    assert 340 < by_hosts[12] < 500


def test_figure6_bottom_delay_percentiles(benchmark, report):
    results = run_once(benchmark, figure6_results)

    report()
    report("Figure 6 (bottom) — delays at half max throughput")
    report("paper @12 hosts: min 55 ms, p75 <= 247 ms (percentile stack)")
    rows = []
    for r in results:
        stack = dict(r.delay_percentiles)
        rows.append(
            [
                r.hosts,
                round(r.delay_stats.minimum * 1000),
                round(stack[0.50] * 1000),
                round(stack[0.75] * 1000),
                round(stack[0.99] * 1000),
                round(r.delay_stats.maximum * 1000),
            ]
        )
    report(format_table(["hosts", "min ms", "p50 ms", "p75 ms", "p99 ms", "max ms"], rows))

    for r in results:
        stats = r.delay_stats
        assert stats is not None and stats.count > 100
        # Sub-second, stable delays at the target load for every size.
        assert stats.p99 < 1.0
        assert stats.minimum > 0.0
        # Low dispersion: the paper stresses stable latencies.
        assert stats.p99 < 4 * stats.p50
