"""Figure 7: impact of consecutive migrations on notification delays.

Paper: under a 100 pub/s flow with 100 K subscriptions, migrating two AP
slices, then two M slices, then one EP slice raises the delay from a
steady ≈ 500 ms to peaks below two seconds, with the average staying below
one second most of the time.
"""

from repro.experiments import run_figure7
from repro.metrics import format_table

from conftest import run_once


def test_figure7_delay_under_migrations(benchmark, report):
    result = run_once(benchmark, lambda: run_figure7())

    report()
    report("Figure 7 — delays while migrating 2×AP, 2×M, 1×EP slices")
    report(
        "migrations at: "
        + ", ".join(f"t={t:.0f}s ({sid})" for t, sid in result.migration_marks)
    )
    report(
        format_table(
            ["window", "mean ms", "std ms", "min ms", "max ms"],
            [
                [
                    f"{w.window_start:.0f}s",
                    round(w.mean * 1000),
                    round(w.std * 1000),
                    round(w.minimum * 1000),
                    round(w.maximum * 1000),
                ]
                for w in result.delay_windows[::2]
            ],
        )
    )
    report(
        f"steady-state mean: {result.steady_state_mean_s * 1000:.0f} ms "
        f"(paper ≈ 500 ms); peak: {result.peak_delay_s * 1000:.0f} ms "
        f"(paper < 2000 ms)"
    )

    # Steady state: stable sub-second delays before any migration.
    assert 0.05 < result.steady_state_mean_s < 1.0
    # Migrations disturb delays measurably but keep them below ≈ 2 s.
    assert result.peak_delay_s > 1.5 * result.steady_state_mean_s
    assert result.peak_delay_s < 2.5
    # The disturbance is transient: the last windows return to steady state.
    tail = [w.mean for w in result.delay_windows[-5:]]
    assert max(tail) < 2 * result.steady_state_mean_s
    assert len(result.migration_marks) == 5
