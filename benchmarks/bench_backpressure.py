"""Flow-controlled transport under overload and at moderate load.

Two claims of the transport layer (DESIGN.md §9) are measured on a
2-host, 2/4/2-slice hub with statistically sampled matching:

* **Backpressure bounds memory without losing content.**  The hub's drain
  capacity is self-calibrated (an instantaneous burst, timed on the
  simulation clock), then the same paced workload is replayed at ~2x that
  capacity with and without credit-based backpressure.  The throttled run
  must keep every receiver inbox within ``credit_window x fan-in``
  events, lose nothing, and produce the exact notification multiset of
  the unthrottled run — overload becomes upstream spill/delay instead of
  unbounded inbox growth.

* **Adaptive flush beats fixed epochs on tail latency.**  At moderate
  load (half capacity), per-channel adaptive flush (flush on batch-full
  or on the delay-budget deadline) must deliver a lower p99 notification
  delay than the fabric's fixed flush epochs at the same budget: busy
  channels fill their batch long before the budget expires, while fixed
  epochs hold every message until the next boundary at every hop.

Results are exported to ``BENCH_backpressure.json`` (override with
``REPRO_BENCH_BACKPRESSURE_OUT``) for the CI workflow to archive.
"""

import os

from repro.cluster import CloudProvider, HostSpec
from repro.filtering import (
    BruteForceLibrary,
    ExactBackend,
    Op,
    Predicate,
    PredicateSet,
)
from repro.metrics import write_json
from repro.pubsub import HubConfig, Publication, StreamHub, Subscription
from repro.sim import Environment

from conftest import memory_snapshot, run_once

SUBSCRIPTIONS = 150
ENGINE_HOSTS = 2
CREDIT_WINDOW = 16
FLUSH_BUDGET_S = 0.08
CALIBRATION_PUBS = 400
OVERLOAD_PUBS = 1_200
MODERATE_PUBS = 1_000
RESULTS = {}

THROTTLED = dict(
    net_flush_mode="adaptive",
    net_flush_s=0.01,
    net_flush_max_batch=8,
    net_backpressure=True,
    net_credit_window=CREDIT_WINDOW,
)


def band(low, high):
    return PredicateSet.of(
        Predicate(0, Op.GE, low), Predicate(0, Op.LE, high)
    )


def payload_for(pub_id):
    return [float(pub_id % 100), 0.0, 0.0, 0.0]


def build_hub(net=None):
    """Exact matching: notification content depends only on the
    publication, never on transport timing — the identity oracle."""
    env = Environment()
    cloud = CloudProvider(env, spec=HostSpec(cores=8), max_hosts=8)
    hosts = [cloud.provision_now() for _ in range(ENGINE_HOSTS + 1)]
    config = HubConfig(
        ap_slices=2,
        m_slices=4,
        ep_slices=2,
        sink_slices=1,
        encrypted=False,
        backend_factory=lambda index: ExactBackend(BruteForceLibrary()),
        **(net or {}),
    )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy_all_on(hosts[:ENGINE_HOSTS], hosts[ENGINE_HOSTS:])
    for sub_id in range(SUBSCRIPTIONS):
        low = float((sub_id * 7) % 60)
        hub.subscribe(Subscription(sub_id, 1000 + sub_id, band(low, low + 40)))
    env.run()
    return env, hub


def drive(env, hub, count, rate):
    """Publish ``count`` events paced at ``rate``/s, then drain fully."""
    interval = 1.0 / rate

    def driver():
        for pub_id in range(count):
            hub.publish(
                Publication(
                    pub_id, payload=payload_for(pub_id), published_at=env.now
                )
            )
            yield env.timeout(interval)

    start = env.now
    env.process(driver())
    env.run()
    return env.now - start


def notification_multiset(hub):
    return sorted(
        (n.pub_id, n.count, tuple(sorted(n.subscriber_ids or ())))
        for n in hub.notification_log
    )


def inbox_peaks(hub):
    """Per-slice inbox peaks and the transport's inbound fan-in."""
    transport = hub.runtime.transport
    peaks = {}
    for slice_id in hub.engine_slice_ids():
        instance = hub.runtime._active(slice_id)
        peaks[slice_id] = {
            "peak_inbox": instance.peak_queue_length,
            "fan_in": transport.inbound_channel_count(instance),
        }
    return peaks


def measure_capacity():
    """Drain rate of an instantaneous burst, in publications per sim-second."""
    env, hub = build_hub()
    start = env.now
    for pub_id in range(CALIBRATION_PUBS):
        hub.publish(
            Publication(pub_id, payload=payload_for(pub_id), published_at=env.now)
        )
    env.run()
    return CALIBRATION_PUBS / (env.now - start)


def run_overload(rate, net=None):
    env, hub = build_hub(net)
    duration = drive(env, hub, OVERLOAD_PUBS, rate)
    transport = hub.runtime.transport
    spilled = sum(
        channel.messages_spilled for channel in transport._channels.values()
    )
    stall_s = sum(
        channel.stall_seconds_total
        for channel in transport._channels.values()
    )
    peaks = inbox_peaks(hub)
    return {
        "publications": OVERLOAD_PUBS,
        "rate_pub_s": rate,
        "sim_duration_s": duration,
        "notified_publications": hub.notified_publications,
        "notifications": notification_multiset(hub),
        "peak_inbox_max": max(p["peak_inbox"] for p in peaks.values()),
        "inbox_peaks": peaks,
        "messages_spilled": spilled,
        "stall_seconds_total": stall_s,
        "flush_causes": transport.flush_cause_totals(),
    }


def run_moderate(rate, mode):
    net = dict(net_flush_mode=mode, net_flush_s=FLUSH_BUDGET_S)
    if mode == "adaptive":
        net["net_flush_max_batch"] = 4
    env, hub = build_hub(net)
    drive(env, hub, MODERATE_PUBS, rate)
    stats = hub.delay_tracker.stats()
    assert stats is not None and stats.count == MODERATE_PUBS
    return {
        "publications": MODERATE_PUBS,
        "rate_pub_s": rate,
        "flush_mode": mode,
        "flush_s": FLUSH_BUDGET_S,
        "delay_mean_s": stats.mean,
        "delay_p50_s": stats.p50,
        "delay_p99_s": stats.p99,
        "delay_max_s": stats.maximum,
    }


def test_backpressure_bounds_inboxes_without_losing_content(benchmark, report):
    capacity = measure_capacity()
    overload_rate = 2.0 * capacity

    unthrottled = run_overload(overload_rate)
    throttled = run_once(
        benchmark, lambda: run_overload(overload_rate, THROTTLED)
    )

    # Identical content, exactly once, zero loss — under 2x overload.
    assert throttled["notifications"] == unthrottled["notifications"]
    assert throttled["notified_publications"] == OVERLOAD_PUBS
    assert unthrottled["notified_publications"] == OVERLOAD_PUBS

    # Every throttled inbox honours the credit bound; the unthrottled run
    # demonstrates the overload was real (its inboxes ran far deeper).
    for slice_id, peak in throttled["inbox_peaks"].items():
        if peak["fan_in"]:
            assert peak["peak_inbox"] <= CREDIT_WINDOW * peak["fan_in"], slice_id
    assert throttled["messages_spilled"] > 0
    assert unthrottled["peak_inbox_max"] > throttled["peak_inbox_max"]

    for name, run in (("unthrottled", unthrottled), ("throttled", throttled)):
        RESULTS[name] = {
            key: value
            for key, value in run.items()
            if key not in ("notifications",)
        }
    RESULTS["capacity_pub_s"] = capacity
    RESULTS["overload_factor"] = 2.0
    RESULTS["credit_window"] = CREDIT_WINDOW

    report()
    report(
        f"Backpressure under ~2x overload "
        f"({OVERLOAD_PUBS} pubs at {overload_rate:,.0f}/s, "
        f"capacity {capacity:,.0f}/s, window {CREDIT_WINDOW})"
    )
    report(
        f"  unthrottled peak inbox : {unthrottled['peak_inbox_max']:6d} events"
    )
    report(
        f"  throttled peak inbox   : {throttled['peak_inbox_max']:6d} events "
        f"(bound: window x fan-in)"
    )
    report(
        f"  spilled upstream       : {throttled['messages_spilled']:6d} messages, "
        f"{throttled['stall_seconds_total']:.2f} stall-s"
    )
    report(
        f"  content                : identical multiset, "
        f"{OVERLOAD_PUBS}/{OVERLOAD_PUBS} publications notified"
    )


def test_adaptive_flush_beats_fixed_on_tail_delay(report):
    capacity = RESULTS.get("capacity_pub_s") or measure_capacity()
    moderate_rate = 0.5 * capacity

    fixed = run_moderate(moderate_rate, "fixed")
    adaptive = run_moderate(moderate_rate, "adaptive")

    RESULTS["moderate"] = {"fixed": fixed, "adaptive": adaptive}
    RESULTS["p99_improvement"] = fixed["delay_p99_s"] / adaptive["delay_p99_s"]

    report()
    report(
        f"Adaptive vs fixed flush at moderate load "
        f"({MODERATE_PUBS} pubs at {moderate_rate:,.0f}/s, "
        f"budget {FLUSH_BUDGET_S * 1000:.0f} ms)"
    )
    for run in (fixed, adaptive):
        report(
            f"  {run['flush_mode']:<9}: p50 {run['delay_p50_s'] * 1000:7.1f} ms   "
            f"p99 {run['delay_p99_s'] * 1000:7.1f} ms   "
            f"max {run['delay_max_s'] * 1000:7.1f} ms"
        )
    report(
        f"  p99 improvement : {RESULTS['p99_improvement']:.2f}x "
        f"(acceptance floor: adaptive < fixed)"
    )

    path = os.environ.get(
        "REPRO_BENCH_BACKPRESSURE_OUT", "BENCH_backpressure.json"
    )
    write_json(
        path,
        {
            "workload": {
                "subscriptions": SUBSCRIPTIONS,
                "matching": "exact (brute force, band filters)",
                "engine_hosts": ENGINE_HOSTS,
                "throttled_config": dict(THROTTLED),
            },
            "results": dict(RESULTS),
            "memory": memory_snapshot(),
        },
    )
    report(f"  exported        : {path}")
    assert adaptive["delay_p99_s"] < fixed["delay_p99_s"]
