"""Out-of-core sharded ASPE store at 1M+ subscriptions (DESIGN.md §8).

Two experiments:

* ``test_outofcore_million_subscriptions`` — the acceptance run.  A
  bulk-encrypted workload (1M subscriptions at ``REPRO_BENCH_SCALE=1``)
  is loaded twice: into a dense in-RAM :class:`AspeLibrary` and into a
  :class:`ShardedAspeLibrary` on the ``mmap`` backend whose *total*
  resident budget is 25% of the dense footprint.  The mmap run must
  produce byte-identical match lists — across a runtime shard split and
  merge performed mid-stream — stay under its residency budget, and keep
  at least half the dense matching throughput.
* ``test_outofcore_hub_reshard`` — end-to-end determinism.  The same
  publications flow through two full AP→M→EP deployments (dense vs
  sharded+mmap with live ``runtime.reshard`` split/merge mid-run); the
  notification logs must be byte-identical.

Results are exported to ``BENCH_outofcore.json`` (override with
``REPRO_BENCH_OUTOFCORE_OUT``), including peak-RSS/residency records and
a throughput-vs-budget curve, for the CI workflow to archive.
"""

import math
import os
import random
import time

from repro.filtering import (
    AspeLibrary,
    ExactBackend,
    ShardedAspeLibrary,
    StoreConfig,
)
from repro.metrics import write_json
from repro.workloads import ScaleWorkload

from conftest import bench_scale, memory_snapshot, peak_rss_bytes

SEED = 20140630
DIMENSIONS = 4
MATCHING_RATE = 0.001
PUBLICATIONS = 32
MATCH_BATCH = 8
BUDGET_FRACTION = 0.25
CURVE_FRACTIONS = (0.1, 0.25, 0.5, 1.0)

RESULTS = {}


def _subscription_count() -> int:
    return max(20_000, int(round(1_000_000 * bench_scale())))


def _chunk_rows(rows: int) -> int:
    """~32 chunks whatever the scale (65536 rows/chunk at 1M subs)."""
    return min(65_536, max(1_024, rows // 32))


def _load(library, workload_seed: int, count: int) -> float:
    workload = ScaleWorkload(
        dimensions=DIMENSIONS,
        matching_rate=MATCHING_RATE,
        seed=workload_seed,
    )
    start = time.perf_counter()
    workload.load(library, count, batch_size=50_000)
    return time.perf_counter() - start


def _publications(workload_seed: int, count: int):
    # A separate generator instance: publication attributes must not
    # depend on how many subscriptions were drawn before them.
    return ScaleWorkload(
        dimensions=DIMENSIONS, matching_rate=MATCHING_RATE, seed=workload_seed + 7
    ).publications(count)


def _match_all(library, publications, reshard_at=None):
    """Match in fixed batches; returns (results, match_seconds).

    ``reshard_at`` maps batch indexes to callables run *before* that
    batch — the mid-stream split/merge hooks.
    """
    results = []
    elapsed = 0.0
    for index, start in enumerate(range(0, len(publications), MATCH_BATCH)):
        if reshard_at and index in reshard_at:
            reshard_at[index]()
        batch = publications[start : start + MATCH_BATCH]
        begin = time.perf_counter()
        results.extend(library.match_batch(batch))
        elapsed += time.perf_counter() - begin
    return results, elapsed


def test_outofcore_million_subscriptions(report):
    subscriptions = _subscription_count()
    publications = _publications(SEED, PUBLICATIONS)

    # Dense in-RAM baseline.
    dense = AspeLibrary(store_config=StoreConfig(backend="dense"))
    dense_load_s = _load(dense, SEED, subscriptions)
    dense_results, dense_match_s = _match_all(dense, publications)
    dense_bytes = dense.store_stats()["resident_bytes"]
    budget_bytes = int(math.ceil(dense_bytes * BUDGET_FRACTION))
    # The split doubles the store count mid-run and each store enforces
    # its own budget, so give every store half of the total allowance —
    # the aggregate stays within BUDGET_FRACTION even at two shards.
    per_store_mb = budget_bytes / 2 / (1024 * 1024)

    # Out-of-core sharded run under the 25% residency budget, with a
    # runtime split after the first third of the publications and a
    # merge after the second.
    chunk_rows = _chunk_rows(2 * subscriptions)
    sharded = ShardedAspeLibrary(
        store_config=StoreConfig(
            backend="mmap",
            chunk_rows=chunk_rows,
            memory_budget_mb=per_store_mb,
        )
    )
    mmap_load_s = _load(sharded, SEED, subscriptions)
    shard_ops = {}
    batches = math.ceil(PUBLICATIONS / MATCH_BATCH)
    shard_ops[batches // 3] = lambda: RESULTS.__setitem__(
        "split", vars(sharded.split_shard())
    )
    shard_ops[2 * batches // 3] = lambda: RESULTS.__setitem__(
        "merge", vars(sharded.merge_shards())
    )
    mmap_results, mmap_match_s = _match_all(
        sharded, publications, reshard_at=shard_ops
    )
    stats = sharded.store_stats()

    identical = dense_results == mmap_results
    dense_pub_s = PUBLICATIONS / dense_match_s
    mmap_pub_s = PUBLICATIONS / mmap_match_s
    ratio = mmap_pub_s / dense_pub_s
    matches = sum(len(ids) for ids in dense_results)

    RESULTS.update(
        {
            "subscriptions": subscriptions,
            "rows": stats["rows"],
            "dense_bytes": dense_bytes,
            "budget_bytes": budget_bytes,
            "resident_peak_bytes": stats["resident_peak_bytes"],
            "faults": stats["faults"],
            "evictions": stats["evictions"],
            "dense_load_s": dense_load_s,
            "mmap_load_s": mmap_load_s,
            "dense_match_pub_s": dense_pub_s,
            "mmap_match_pub_s": mmap_pub_s,
            "throughput_ratio": ratio,
            "match_lists_identical": identical,
            "matches": matches,
        }
    )

    report()
    report(f"Out-of-core ASPE store ({subscriptions:,} subscriptions, "
           f"{stats['rows']:,} packed rows)")
    report(f"  dense footprint : {dense_bytes / 1e6:10.1f} MB "
           f"(load {dense_load_s:6.1f} s)")
    report(f"  mmap budget     : {budget_bytes / 1e6:10.1f} MB "
           f"({BUDGET_FRACTION:.0%} of dense; load {mmap_load_s:6.1f} s)")
    report(f"  resident peak   : {stats['resident_peak_bytes'] / 1e6:10.1f} MB "
           f"({stats['faults']} faults, {stats['evictions']} evictions)")
    report(f"  dense matching  : {dense_pub_s:10.2f} pub/s "
           f"({matches:,} matches over {PUBLICATIONS} publications)")
    report(f"  mmap matching   : {mmap_pub_s:10.2f} pub/s "
           f"({ratio:.2f}x dense; floor 0.5x)")
    report(f"  split rewrote   : {RESULTS['split']['rows_rewritten']:,} rows; "
           f"merge rewrote {RESULTS['merge']['rows_rewritten']:,}")
    report(f"  match lists     : "
           + ("byte-identical across split+merge" if identical else "DIVERGED"))

    assert identical, "mmap/sharded match lists diverged from dense"
    assert RESULTS["merge"]["rows_rewritten"] == 0
    assert stats["resident_peak_bytes"] <= budget_bytes
    # The throughput floor is an asymptotic claim: below ~100k subs the
    # per-chunk dispatch overhead dominates the gemms and the ratio says
    # nothing about the 1M-scale behaviour, so only report it there.
    RESULTS["throughput_floor_enforced"] = subscriptions >= 100_000
    if RESULTS["throughput_floor_enforced"]:
        assert ratio >= 0.5, (
            f"out-of-core matching fell below half the in-RAM throughput "
            f"({ratio:.2f}x)"
        )

    _export_curve(report, subscriptions)


def _export_curve(report, subscriptions: int) -> None:
    """Throughput-vs-budget curve at a fixed sub-count, then export."""
    curve_subs = min(subscriptions, 100_000)
    curve_pubs = _publications(SEED + 1, 16)
    dense = AspeLibrary(store_config=StoreConfig(backend="dense"))
    _load(dense, SEED + 1, curve_subs)
    baseline, baseline_s = _match_all(dense, curve_pubs)
    dense_bytes = dense.store_stats()["resident_bytes"]

    curve = []
    for fraction in CURVE_FRACTIONS:
        library = AspeLibrary(
            store_config=StoreConfig(
                backend="mmap",
                chunk_rows=_chunk_rows(2 * curve_subs),
                memory_budget_mb=dense_bytes * fraction / (1024 * 1024),
            )
        )
        _load(library, SEED + 1, curve_subs)
        results, match_s = _match_all(library, curve_pubs)
        assert results == baseline
        stats = library.store_stats()
        curve.append(
            {
                "budget_fraction": fraction,
                "pub_per_s": len(curve_pubs) / match_s,
                "relative_throughput": baseline_s / match_s,
                "resident_peak_bytes": stats["resident_peak_bytes"],
                "faults": stats["faults"],
                "evictions": stats["evictions"],
                "peak_rss_bytes": peak_rss_bytes(),
            }
        )
    RESULTS["curve"] = {"subscriptions": curve_subs, "points": curve}

    report(f"  budget curve    ({curve_subs:,} subscriptions):")
    for point in curve:
        report(
            f"    {point['budget_fraction']:4.0%} budget: "
            f"{point['relative_throughput']:5.2f}x dense, "
            f"{point['faults']:5d} faults"
        )

    path = os.environ.get("REPRO_BENCH_OUTOFCORE_OUT", "BENCH_outofcore.json")
    write_json(
        path,
        {
            "workload": {
                "subscriptions": RESULTS["subscriptions"],
                "publications": PUBLICATIONS,
                "dimensions": DIMENSIONS,
                "matching_rate": MATCHING_RATE,
                "chunk_rows": _chunk_rows(2 * RESULTS["subscriptions"]),
                "budget_fraction": BUDGET_FRACTION,
            },
            "results": dict(RESULTS),
            "acceptance": {
                "match_lists_identical": RESULTS["match_lists_identical"],
                "resident_under_budget": (
                    RESULTS["resident_peak_bytes"] <= RESULTS["budget_bytes"]
                ),
                "throughput_floor": {
                    "ratio": RESULTS["throughput_ratio"],
                    "threshold": 0.5,
                    "enforced": RESULTS["throughput_floor_enforced"],
                },
                "merge_zero_copy": RESULTS["merge"]["rows_rewritten"] == 0,
            },
            "memory": memory_snapshot(),
        },
    )
    report(f"  exported        : {path}")


def test_outofcore_hub_reshard(report):
    """End-to-end: live reshard mid-run, byte-identical notification log."""
    from repro.cluster import CloudProvider, HostSpec
    from repro.pubsub import HubConfig, Publication, StreamHub, Subscription
    from repro.sim import Environment

    subscriptions = 400
    publications = 60
    workload = ScaleWorkload(
        dimensions=DIMENSIONS, matching_rate=0.05, seed=SEED + 2
    )
    subs = [item for batch in workload.subscription_batches(subscriptions)
            for item in batch]
    pubs = workload.publications(publications)

    def run(sharded: bool):
        env = Environment()
        cloud = CloudProvider(env, spec=HostSpec(cores=8), max_hosts=4)
        hosts = [cloud.provision_now() for _ in range(3)]

        def factory(index):
            if sharded:
                return ExactBackend(
                    ShardedAspeLibrary(
                        store_config=StoreConfig(
                            backend="mmap", chunk_rows=64, memory_budget_mb=1
                        )
                    )
                )
            return ExactBackend(AspeLibrary())

        config = HubConfig(
            ap_slices=1, m_slices=2, ep_slices=1, sink_slices=1,
            backend_factory=factory,
        )
        hub = StreamHub(env, cloud.network, config)
        hub.deploy_all_on(hosts[:2], hosts[2:])
        for sub_id, payload in subs:
            hub.subscribe(Subscription(sub_id, 1000 + sub_id, payload))
        env.run(until=5.0)
        for index, payload in enumerate(pubs):
            hub.publish(Publication(index, payload, published_at=env.now))
            if sharded and index == publications // 3:
                hub.runtime.reshard("M:0", "split")
            if sharded and index == 2 * publications // 3:
                hub.runtime.reshard("M:0", "merge")
            env.run(until=env.now + 0.3)
        env.run(until=env.now + 30.0)
        log = [(n.pub_id, n.subscriber_ids) for n in hub.notification_log]
        return log, hub

    dense_log, _ = run(sharded=False)
    sharded_log, hub = run(sharded=True)

    report()
    report(f"Hub-level reshard determinism ({subscriptions} subscriptions, "
           f"{publications} publications)")
    report(f"  shard ops       : {hub.runtime.shard_ops_completed} "
           f"(split + merge on M:0, live)")
    report(f"  notifications   : {len(dense_log)} "
           + ("byte-identical" if dense_log == sharded_log else "DIVERGED"))
    assert hub.runtime.shard_ops_completed == 2
    assert dense_log == sharded_log
    RESULTS["hub_notifications"] = len(dense_log)
    RESULTS["hub_log_identical"] = dense_log == sharded_log
