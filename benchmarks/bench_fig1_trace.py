"""Figure 1: typical tick volume at the Frankfurt Stock Exchange.

Regenerates the trace model's day curve and checks its qualitative shape
against the plotted trace: near-silence overnight, a sharp rise at the
09:00 open, a ≈ 1 200 ticks/s peak, and a rapid decline after the 17:30
close.
"""

from repro.metrics import format_series
from repro.workloads import FrankfurtTraceModel

from conftest import run_once


def test_figure1_tick_trace(benchmark, report):
    trace = FrankfurtTraceModel()

    def run():
        return trace.series(resolution_s=300.0)

    series = run_once(benchmark, run)

    hourly = [(t / 3600.0, rate) for t, rate in series if t % 3600 == 0]
    report()
    report("Figure 1 — FSE tick volume (synthetic reconstruction)")
    report("paper: silent overnight, sharp rise at 9:00, peak ≈ 1200/s,")
    report("       afternoon spike, sharp decline after the 17:30 close")
    report(format_series("measured (hour, ticks/s)", [(f"{h:04.1f}h", round(r)) for h, r in hourly]))

    by_time = dict(series)

    def rate_at(hour):
        return by_time[hour * 3600.0]

    # Overnight silence vs. trading-hours volume.
    assert rate_at(3.0) < 20.0
    assert rate_at(11.0) > 500.0
    # Sharp rise at the open.
    assert rate_at(9.5) > 5 * rate_at(8.0)
    # Peak magnitude near the paper's 1200 ticks/s.
    peak = max(rate for _, rate in series)
    assert 1000.0 <= peak <= 1600.0
    # Afternoon spike above the midday plateau.
    assert rate_at(15.5) > 1.5 * rate_at(13.0)
    # Decline after the close.
    assert rate_at(19.0) < 0.1 * rate_at(17.0)
