"""Policy-signal ablation: cpu vs slo vs spill vs combined elasticity.

A double-surge workload — surge, trough, identical second surge — is
replayed under four signal stacks (DESIGN.md §10).  On a *single* ramp
the stacks are near-indistinguishable here: the simulator's notification
delay stays flat until queues build, and the average CPU crosses the
0.70 band at that same moment, so the CPU rules fire as early as any
symptom can.  The stacks diverge on what happens *between* surges:

* **cpu** (the paper's §V rules) sees only the instantaneous utilization
  band.  It releases the fleet during the trough and pays the full
  grace-gated re-provisioning ladder when the second surge hits — tail
  delay explodes while the enforcer climbs back up one grace period at a
  time.
* **slo** keeps the CPU rules but vetoes scale-in while the windowed p99
  notification delay sits above the release floor.  The still-elevated
  tail from surge one holds the fleet through the trough, so surge two
  lands on a fully provisioned system (provisioning lead = the whole
  cpu re-provisioning time) — then the veto budget expires and the fleet
  still releases to one host by the end of the run.
* **spill** vetoes release while transport spill/starvation pressure is
  recent (``spill_hold_rounds``).  Spill pressure clears as soon as the
  backlog drains, so on this workload it only delays the first release
  by the hold window — an honest negative: spill evidence is a
  saturation signal, not a tail-latency memory.
* **combined** stacks all three; the slo veto dominates.

The acceptance criterion of the ablation is asserted below: at least one
symptom stack reaches the reference fleet size in surge two earlier than
CPU-only, with a lower surge-two p99, while still releasing down to one
host by the end of the run.  Results are exported to
``BENCH_signals.json`` (override with ``REPRO_BENCH_SIGNALS_OUT``).

The segment lengths are calibrated against the fixed 30 s grace period
and 5 s probe interval (the trough must outlast one release ladder);
they deliberately do **not** take ``REPRO_BENCH_SCALE``.
"""

import os

from repro.elastic import ElasticityPolicy
from repro.experiments.elastic import run_elastic
from repro.experiments.harness import ExperimentSetup
from repro.metrics import write_json
from repro.workloads import trapezoid

from conftest import memory_snapshot, run_once

RAMP_UP_S = 50.0
PLATEAU_S = 30.0
RAMP_DOWN_S = 40.0
TROUGH_S = 50.0
TAIL_S = 60.0
PEAK_RATE = 180.0
FLOOR_RATE = 15.0
SURGE_S = RAMP_UP_S + PLATEAU_S + RAMP_DOWN_S
SURGE2_START_S = SURGE_S + TROUGH_S
DURATION_S = SURGE2_START_S + SURGE_S + TAIL_S
#: Fleet size the cpu stack needs to absorb one surge (its surge-one
#: steady state); "provisioning lead" is how much earlier a stack has
#: this many hosts running after the second surge begins.
REF_HOSTS = 4

_SLO = dict(slo_p99_s=0.5, slo_veto_max_rounds=24)
_SPILL = dict(spill_depth_limit=10, spill_sustain_rounds=1)
VARIANTS = {
    "cpu": dict(),
    "slo": dict(signals=("cpu", "slo"), **_SLO),
    "spill": dict(signals=("cpu", "spill"), **_SPILL),
    "combined": dict(signals=("cpu", "slo", "spill"), **_SLO, **_SPILL),
}
RESULTS = {}

_surge = trapezoid(
    ramp_up_s=RAMP_UP_S, plateau_s=PLATEAU_S, ramp_down_s=RAMP_DOWN_S,
    peak=PEAK_RATE,
)


def double_surge(t: float) -> float:
    if t < SURGE_S:
        return max(_surge(t), FLOOR_RATE)
    if t < SURGE2_START_S:
        return FLOOR_RATE
    return max(_surge(t - SURGE2_START_S), FLOOR_RATE)


def run_variant(name: str) -> dict:
    """Run one signal stack over the double surge (cached per module)."""
    if name in RESULTS:
        return RESULTS[name]
    policy = ElasticityPolicy(**VARIANTS[name])
    setup = ExperimentSetup(backpressure=True, credit_window=8)
    result = run_elastic(double_surge, DURATION_S, setup=setup, policy=policy)

    t_ref = None
    for t, hosts in result.host_series:
        if t >= SURGE2_START_S and hosts >= REF_HOSTS:
            t_ref = t - SURGE2_START_S
            break
    RESULTS[name] = {
        "signals": ",".join(policy.signals),
        "published": result.published,
        "notified": result.notified,
        "max_hosts": result.max_hosts,
        "final_hosts": result.final_hosts,
        "host_seconds": result.host_seconds(),
        "first_scale_out_s": result.first_scale_out_s,
        "surge2_time_to_ref_hosts_s": t_ref,
        "surge2_p99_s": result.delay_p99_s(since=SURGE2_START_S),
        "trough_min_hosts": min(
            hosts
            for t, hosts in result.host_series
            if SURGE_S <= t < SURGE2_START_S
        ),
        "decisions": [
            {
                "time_s": record.time,
                "kind": record.kind,
                "signal": record.signal,
                "new_hosts": record.new_hosts,
                "released_hosts": record.released_hosts,
            }
            for record in result.decisions
        ],
    }
    return RESULTS[name]


def test_slo_stack_provisions_surge_two_earlier(benchmark, report):
    cpu = run_once(benchmark, lambda: run_variant("cpu"))
    slo = run_variant("slo")

    for run in (cpu, slo):
        assert run["notified"] == run["published"]  # no content lost

    # The acceptance criterion: the symptom stack reaches the reference
    # fleet size earlier than CPU-only on this ramp (here: immediately,
    # because the veto never let the fleet go during the trough).
    assert cpu["surge2_time_to_ref_hosts_s"] is not None
    assert slo["surge2_time_to_ref_hosts_s"] is not None
    lead = cpu["surge2_time_to_ref_hosts_s"] - slo["surge2_time_to_ref_hosts_s"]
    assert lead > 0
    assert slo["surge2_p99_s"] < cpu["surge2_p99_s"]
    # ... and the veto expiry still releases the fleet afterwards.
    assert slo["final_hosts"] == 1 == cpu["final_hosts"]

    report()
    report(
        f"Double surge ({PEAK_RATE:.0f}/s peak, {TROUGH_S:.0f}s trough, "
        f"{REF_HOSTS}-host reference fleet)"
    )
    report(
        f"  cpu : {REF_HOSTS} hosts {cpu['surge2_time_to_ref_hosts_s']:5.1f}s "
        f"after surge 2, p99 {cpu['surge2_p99_s']:6.2f}s "
        f"(trough min {cpu['trough_min_hosts']} hosts)"
    )
    report(
        f"  slo : {REF_HOSTS} hosts {slo['surge2_time_to_ref_hosts_s']:5.1f}s "
        f"after surge 2, p99 {slo['surge2_p99_s']:6.2f}s "
        f"(trough min {slo['trough_min_hosts']} hosts)"
    )
    report(f"  provisioning lead : {lead:.1f}s")


def test_signal_ablation_table_and_export(report):
    runs = {name: run_variant(name) for name in VARIANTS}

    for name, run in runs.items():
        assert run["notified"] == run["published"], name
        assert run["final_hosts"] == 1, name  # every stack releases fully

    cpu_t = runs["cpu"]["surge2_time_to_ref_hosts_s"]
    leads = {
        name: cpu_t - run["surge2_time_to_ref_hosts_s"]
        for name, run in runs.items()
        if run["surge2_time_to_ref_hosts_s"] is not None
    }
    # At least one symptom stack must beat CPU-only re-provisioning.
    assert max(lead for name, lead in leads.items() if name != "cpu") > 0

    report()
    report(
        f"{'stack':<9} {'max':>4} {'host-s':>7} {'t->%d@s2' % REF_HOSTS:>8} "
        f"{'lead':>6} {'p99@s2':>7} {'trough':>6}"
    )
    for name, run in runs.items():
        t_ref = run["surge2_time_to_ref_hosts_s"]
        report(
            f"  {name:<7} {run['max_hosts']:>4} {run['host_seconds']:>7.0f} "
            f"{t_ref if t_ref is not None else float('nan'):>8.1f} "
            f"{leads.get(name, float('nan')):>6.1f} "
            f"{run['surge2_p99_s']:>7.2f} {run['trough_min_hosts']:>6}"
        )

    path = os.environ.get("REPRO_BENCH_SIGNALS_OUT", "BENCH_signals.json")
    write_json(
        path,
        {
            "workload": {
                "profile": "double_surge",
                "peak_rate_pub_s": PEAK_RATE,
                "floor_rate_pub_s": FLOOR_RATE,
                "surge_s": SURGE_S,
                "trough_s": TROUGH_S,
                "duration_s": DURATION_S,
                "ref_hosts": REF_HOSTS,
                "backpressure": True,
                "credit_window": 8,
            },
            "variants": {name: dict(VARIANTS[name]) for name in VARIANTS},
            "results": runs,
            "provisioning_lead_s": leads,
            "memory": memory_snapshot(),
        },
    )
    report(f"  exported : {path}")
