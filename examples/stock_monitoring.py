#!/usr/bin/env python
"""Stock-market monitoring with elastic scaling (the paper's motivation).

Replays a compressed Frankfurt Stock Exchange trading day against an
elastic deployment: the engine starts on a single host, the elasticity
manager adds hosts as the morning tick volume ramps up, rides the
afternoon spike, and releases hosts after the 17:30 close — exactly the
scenario of the paper's introduction and Figure 9, scaled down to run in
about half a minute.

Run:  python examples/stock_monitoring.py
"""

from repro.coord import CoordinationKernel
from repro.elastic import ElasticityManager, ElasticityPolicy
from repro.experiments.harness import Deployment, ExperimentSetup
from repro.workloads import FrankfurtTraceModel


def main() -> None:
    # A scaled-down day: 50 K subscriptions, a 300 s replay of 6:30-20:00.
    setup = ExperimentSetup(subscriptions=50_000, max_hosts=12)
    deployment = Deployment(setup)
    deployment.deploy_single_host()
    deployment.preload_subscriptions()
    env = deployment.env

    manager = ElasticityManager(
        deployment.hub,
        deployment.cloud,
        deployment.engine_hosts,
        policy=ElasticityPolicy(grace_period_s=15.0),
        coord=CoordinationKernel(),
        probe_interval_s=2.0,
    )
    timeline = []
    manager.probe_listeners.append(
        lambda probes: timeline.append(
            (probes.time, len(probes.hosts), probes.average_utilization())
        )
    )
    manager.start()

    trace = FrankfurtTraceModel()
    duration = 300.0
    # 13.5 trace-hours in 300 s → speedup 162×; peak scaled to 120 pub/s
    # (one host still suffices for the overnight trickle, as in the paper).
    profile = trace.experiment_profile(peak_rate=120.0, speedup=162.0, start_hour=6.5)
    deployment.source.publish_profile(profile, duration_s=duration)
    env.run(until=duration + 30.0)

    print("time   hosts  avg CPU   offered rate")
    for time, hosts, util in timeline[::10]:
        rate = profile(min(time, duration))
        print(f"{time:5.0f}s   {hosts:3d}   {util:6.1%}   {rate:7.1f} pub/s")

    print(f"\nscaling actions: {len(manager.history)}")
    for record in manager.history:
        print(
            f"  t={record.time:6.1f}s {record.kind:17s} "
            f"migrations={record.migrations} new={record.new_hosts} "
            f"released={record.released_hosts}"
        )
    hub = deployment.hub
    print(f"\npublications: {hub.published_count}, all notified: "
          f"{hub.notified_publications == hub.published_count}")
    stats = hub.delay_tracker.stats()
    print(f"delays: mean {stats.mean * 1000:.0f} ms, p99 {stats.p99 * 1000:.0f} ms")


if __name__ == "__main__":
    main()
