#!/usr/bin/env python
"""Surviving a host crash: passive replication in action.

The paper's runtime supports passive slice replication (§III); this
example exercises our end-to-end implementation of it.  A hub runs with
periodic slice checkpoints and upstream event retention; mid-stream, the
host carrying all Matching slices crashes without warning.  The failure
detector notices after a heartbeat timeout, the reliability coordinator
restores every victim slice from its last checkpoint on a spare host and
replays the retained events — and every publication is still matched and
notified exactly once.

Run:  python examples/fault_tolerance.py
"""

from repro.cluster import CloudProvider, FailureDetector, crash_host
from repro.engine import ReliabilityCoordinator
from repro.filtering import BruteForceLibrary, ExactBackend, Op, Predicate, PredicateSet
from repro.pubsub import HubConfig, StreamHub, Subscription
from repro.pubsub.source import SourceDriver
from repro.sim import Environment


def main() -> None:
    env = Environment()
    cloud = CloudProvider(env)
    ap_ep_host = cloud.provision_now()
    m_host = cloud.provision_now()
    sink_host = cloud.provision_now()
    spare = cloud.provision_now()

    config = HubConfig(
        ap_slices=2, m_slices=4, ep_slices=2, sink_slices=1,
        encrypted=False,
        backend_factory=lambda index: ExactBackend(BruteForceLibrary()),
    )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy(ap_hosts=[ap_ep_host], m_hosts=[m_host],
               ep_hosts=[ap_ep_host], sink_hosts=[sink_host])

    # Passive replication: checkpoint every 3 s, replay from retention.
    coordinator = ReliabilityCoordinator(
        hub.runtime, interval_s=3.0, replacement_host_fn=lambda: spare
    )
    coordinator.start(hub.engine_slice_ids())
    detector = FailureDetector(env, detection_delay_s=1.0)
    detector.subscribe(lambda host: coordinator.handle_host_crash(host))

    # 300 subscribers interested in "attribute 0 below 600".
    for sub_id in range(300):
        hub.subscribe(Subscription(sub_id, sub_id, PredicateSet.of(
            Predicate(0, Op.LT, 600.0)
        )))
    env.run(until=1.0)  # the periodic checkpoint loop never ends: bound runs

    source = SourceDriver(hub)
    source.publish_constant(
        rate_per_s=40.0, duration_s=20.0,
        payload_factory=lambda pub_id: [float(pub_id % 1000), 0.0, 0.0, 0.0],
    )

    def crash():
        yield env.timeout(8.0)
        print(f"t={env.now:.1f}s: host {m_host.host_id} (all 4 M slices, "
              f"300 stored subscriptions) crashes")
        crash_host(cloud, m_host)
        detector.report_crash(m_host)

    env.process(crash())
    env.run(until=40.0)

    for report in coordinator.recovery_reports:
        print(f"  recovered {report.slice_id} on {report.replacement_host} "
              f"from checkpoint epoch {report.restored_epoch} "
              f"(+{report.replayed_events} replayed events) "
              f"in {report.duration_s * 1000:.0f} ms")

    stored = sum(
        hub.runtime.handler_of(f"M:{i}").backend.subscription_count()
        for i in range(4)
    )
    wrong = sum(
        1 for s in hub.delay_tracker.samples
        if s.notifications != (300 if (s.pub_id % 1000) < 600 else 0)
    )
    print(f"\nsubscriptions after recovery: {stored}/300")
    print(f"publications: {source.publications_sent}, notified: "
          f"{hub.notified_publications}, wrong match counts: {wrong}")
    assert stored == 300 and wrong == 0
    assert hub.notified_publications == source.publications_sent
    print("exactly-once matching survived the crash.")


if __name__ == "__main__":
    main()
