#!/usr/bin/env python
"""Live slice migration with no lost or duplicated notifications.

Demonstrates the paper's §IV-A protocol directly: while a steady flow of
publications runs, a stateful Matching slice (holding 5 000 encrypted
subscriptions) is migrated between hosts.  The destination instance
buffers duplicated events, the state moves with its timestamp vector, and
every publication is still notified exactly once.

Run:  python examples/live_migration.py
"""

from repro.cluster import CloudProvider
from repro.pubsub import HubConfig, StreamHub, Subscription
from repro.pubsub.source import SourceDriver
from repro.sim import Environment


def main() -> None:
    env = Environment()
    cloud = CloudProvider(env)
    host_a, host_b, sink_host = (cloud.provision_now() for _ in range(3))

    config = HubConfig.sampled(
        0.01, ap_slices=2, m_slices=4, ep_slices=2, sink_slices=1
    )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy_all_on([host_a], [sink_host])

    for sub_id in range(20_000):
        hub.subscribe(Subscription(sub_id, sub_id, None))
    env.run()
    slice_id = "M:1"
    stats = hub.runtime.slice_stats(slice_id)
    print(f"{slice_id} on {stats['host']} holds "
          f"{stats['state_bytes'] / 1e6:.1f} MB of subscription state")

    source = SourceDriver(hub)
    source.publish_constant(rate_per_s=50.0, duration_s=20.0)

    def migrate():
        yield env.timeout(8.0)
        print(f"t={env.now:.1f}s: migrating {slice_id} "
              f"{host_a.host_id} → {host_b.host_id} (flow keeps running)")
        report = yield hub.runtime.migrate(slice_id, host_b)
        print(f"t={env.now:.1f}s: done in {report.duration_s * 1000:.0f} ms "
              f"({report.state_bytes / 1e6:.1f} MB moved, "
              f"service interrupted {report.interruption_s * 1000:.0f} ms)")

    env.process(migrate())
    env.run(until=25.0)

    print(f"\nplacement now: {slice_id} on {hub.runtime.placement()[slice_id]}")
    print(f"published: {hub.published_count}, notified: {hub.notified_publications}")
    assert hub.published_count == hub.notified_publications, "exactly-once broken!"
    worst = max(s.delay for s in hub.delay_tracker.samples)
    print(f"worst notification delay across the migration: {worst * 1000:.0f} ms")


if __name__ == "__main__":
    main()
