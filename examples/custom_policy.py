#!/usr/bin/env python
"""Tuning the elasticity policy: headroom vs. bill.

The paper's policy packs hosts to a 50% CPU target — headroom to ride out
load changes between enforcement rounds, paid for in extra hosts.  This
example runs the same load ramp under a conservative (35% target) and an
aggressive (65% target) policy and compares fleet sizes, migrations and
the cloud bill.

Run:  python examples/custom_policy.py
"""

from repro.elastic import ElasticityPolicy
from repro.experiments import ExperimentSetup, run_elastic
from repro.experiments.cost import host_seconds
from repro.filtering import CostModel
from repro.workloads import trapezoid


def run(policy_name: str, policy: ElasticityPolicy):
    # Small but saturating workload: a heavy per-match cost makes one host
    # saturate at ≈ 20 publications/s, so the experiment stays fast.
    setup = ExperimentSetup(
        subscriptions=4_000,
        ap_slices=2, m_slices=4, ep_slices=2, sink_slices=1,
        cost_model=CostModel(aspe_match_op_s=100e-6),
        max_hosts=16,
    )
    profile = trapezoid(ramp_up_s=60.0, plateau_s=120.0, ramp_down_s=60.0, peak=50.0)
    result = run_elastic(profile, 270.0, setup=setup, policy=policy,
                         probe_interval_s=3.0)
    lo, avg, hi = result.utilization_envelope()
    delays = [w.mean for w in result.delay_windows]
    print(f"{policy_name:14s} peak hosts {result.max_hosts}  "
          f"migrations {len(result.migration_reports):3d}  "
          f"host-seconds {host_seconds(result):6.0f}  "
          f"avg CPU while scaled out {avg:.0%}  "
          f"mean delay {sum(delays) / len(delays) * 1000:.0f} ms")
    return result


def main() -> None:
    print("same ramp to 50 pub/s under three elasticity policies:\n")
    run("conservative", ElasticityPolicy(
        target_utilization=0.35, scale_in_threshold=0.20,
        scale_out_threshold=0.55, local_overload_threshold=0.75,
        grace_period_s=15.0,
    ))
    run("paper (50%)", ElasticityPolicy(grace_period_s=15.0))
    run("aggressive", ElasticityPolicy(
        target_utilization=0.65, scale_in_threshold=0.40,
        scale_out_threshold=0.85, local_overload_threshold=0.92,
        grace_period_s=15.0,
    ))
    print("\nlower targets buy headroom (more hosts, smoother delays);")
    print("higher targets pack tighter and run cheaper.")


if __name__ == "__main__":
    main()
