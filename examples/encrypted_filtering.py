#!/usr/bin/env python
"""Encrypted content-based filtering with ASPE, end to end.

A pub/sub service on an *untrusted* public cloud must match publications
against subscriptions without learning either.  This example:

1. generates an ASPE key (kept by the trusted clients);
2. encrypts subscriptions ("alert me when DAX < 15000") and publications
   (index ticks) on the client side;
3. runs them through a hub whose Matching slices only ever see
   ciphertexts — and still notifies exactly the right subscribers;
4. shows what the matcher actually sees (mixed-coordinate vectors).

Run:  python examples/encrypted_filtering.py
"""

import random

from repro.cluster import CloudProvider
from repro.filtering import (
    AspeCipher,
    AspeKey,
    AspeLibrary,
    ExactBackend,
    Op,
    Predicate,
    PredicateSet,
)
from repro.pubsub import HubConfig, Publication, StreamHub, Subscription
from repro.sim import Environment

# Attribute schema (d = 4, as in the paper's evaluation):
#   0: DAX index level, 1: trade volume, 2: volatility, 3: spread.
DAX, VOLUME, VOLATILITY, SPREAD = range(4)


def main() -> None:
    # -- trusted side: key generation and encryption -------------------------
    key = AspeKey.generate(dimensions=4, rng=random.Random(2014))
    cipher = AspeCipher(key, rng=random.Random(42))

    subscriptions = {
        "crash-alert": PredicateSet.of(Predicate(DAX, Op.LT, 15_000.0)),
        "volume-watch": PredicateSet.of(
            Predicate(VOLUME, Op.GE, 5_000.0), Predicate(VOLATILITY, Op.GT, 30.0)
        ),
        "calm-market": PredicateSet.of(
            Predicate(DAX, Op.GE, 15_000.0), Predicate(VOLATILITY, Op.LE, 10.0)
        ),
    }
    names = list(subscriptions)

    # -- untrusted side: the engine stores/matches only ciphertexts ----------
    env = Environment()
    cloud = CloudProvider(env)
    engine_hosts = [cloud.provision_now() for _ in range(2)]
    sink_host = cloud.provision_now()
    config = HubConfig(
        ap_slices=2,
        m_slices=4,
        ep_slices=2,
        sink_slices=1,
        encrypted=True,  # charges the quadratic ASPE matching cost
        backend_factory=lambda index: ExactBackend(AspeLibrary()),
    )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy_all_on(engine_hosts, [sink_host])

    for sub_id, name in enumerate(names):
        encrypted = cipher.encrypt_subscription(subscriptions[name])
        hub.subscribe(Subscription(sub_id, subscriber=sub_id, filter_payload=encrypted))
    env.run()

    ticks = [
        ("sell-off", [14_500.0, 9_000.0, 45.0, 2.0]),   # crash-alert + volume-watch
        ("quiet day", [15_400.0, 800.0, 6.0, 0.5]),     # calm-market
        ("rally", [16_100.0, 4_000.0, 22.0, 1.0]),      # nobody
    ]
    for pub_id, (label, attributes) in enumerate(ticks):
        encrypted = cipher.encrypt_publication(attributes)
        hub.publish(Publication(pub_id, payload=encrypted, published_at=env.now))
    env.run()

    # -- what the cloud sees ----------------------------------------------------
    print("ciphertext of the 'sell-off' tick as stored/matched in the cloud:")
    print("  ", [round(float(x), 2) for x in cipher.encrypt_publication(ticks[0][1]).vector])
    print("(no coordinate equals 14500, 9000, 45 or 2 — and it differs on")
    print(" every re-encryption of the same tick)\n")

    # -- who got notified -----------------------------------------------------------
    expected = {0: {"crash-alert", "volume-watch"}, 1: {"calm-market"}, 2: set()}
    for notification in sorted(hub.notification_log, key=lambda n: n.pub_id):
        matched = {names[i] for i in (notification.subscriber_ids or ())}
        label = ticks[notification.pub_id][0]
        print(f"tick {notification.pub_id} ({label}): notified {sorted(matched) or 'nobody'}")
        assert matched == expected[notification.pub_id]
    print("\nencrypted matching decisions are exactly the plaintext ones.")


if __name__ == "__main__":
    main()
