#!/usr/bin/env python
"""Quickstart: a content-based pub/sub engine in a simulated cluster.

Builds a small E-STREAMHUB deployment (2 AP / 4 M / 2 EP slices on two
8-core hosts) with *exact plaintext* filtering, registers a handful of
stock-price subscriptions, publishes a few ticks, and prints who got
notified and how fast.

Run:  python examples/quickstart.py
"""

from repro.cluster import CloudProvider
from repro.filtering import BruteForceLibrary, ExactBackend, Op, Predicate, PredicateSet
from repro.pubsub import HubConfig, Publication, StreamHub, Subscription
from repro.sim import Environment


def main() -> None:
    # 1. A simulated private cloud: hosts with 8 cores and a 1 Gbps fabric.
    env = Environment()
    cloud = CloudProvider(env)
    engine_hosts = [cloud.provision_now() for _ in range(2)]
    sink_host = cloud.provision_now()

    # 2. The pub/sub engine: AP partitions subscriptions, M slices filter,
    #    EP slices join partial results and notify.
    config = HubConfig(
        ap_slices=2,
        m_slices=4,
        ep_slices=2,
        sink_slices=1,
        encrypted=False,  # plaintext filtering for the quickstart
        backend_factory=lambda index: ExactBackend(BruteForceLibrary()),
    )
    hub = StreamHub(env, cloud.network, config)
    hub.deploy_all_on(engine_hosts, [sink_host])

    # 3. Subscriptions: attribute 0 is "price", attribute 1 is "volume".
    #    Subscriber 7 wants price >= 100; subscriber 8 wants cheap + liquid;
    #    subscriber 9 wants an exact price.
    filters = {
        7: PredicateSet.of(Predicate(0, Op.GE, 100.0)),
        8: PredicateSet.of(Predicate(0, Op.LT, 50.0), Predicate(1, Op.GT, 1000.0)),
        9: PredicateSet.of(Predicate(0, Op.EQ, 42.0)),
    }
    for sub_id, (subscriber, predicate_set) in enumerate(filters.items()):
        hub.subscribe(Subscription(sub_id, subscriber, predicate_set))
    env.run()  # let the storage phase finish

    # 4. Publications: [price, volume, 0, 0].
    ticks = [
        (0, [120.0, 500.0, 0.0, 0.0]),   # matches subscriber 7
        (1, [42.0, 2000.0, 0.0, 0.0]),   # matches subscribers 8 and 9
        (2, [75.0, 10.0, 0.0, 0.0]),     # matches nobody
    ]
    for pub_id, attributes in ticks:
        hub.publish(Publication(pub_id, payload=attributes, published_at=env.now))
    env.run()

    # 5. Every publication produced exactly one joined notification batch.
    print(f"published={hub.published_count}  notified={hub.notified_publications}")
    for sample in sorted(hub.delay_tracker.samples, key=lambda s: s.pub_id):
        print(
            f"  publication {sample.pub_id}: {sample.notifications} subscriber(s) "
            f"notified in {sample.delay * 1000:.1f} ms"
        )
    assert hub.notified_publications == len(ticks)


if __name__ == "__main__":
    main()
